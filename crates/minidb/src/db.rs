//! The embedded store.

use services::fs::{FsClient, Xv6Fs};
use simos::World;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Default row-cache capacity (rows). Small enough that a zipfian
/// workload still misses sometimes — Sqlite3's page cache "can handle
/// the read request well" but not perfectly (§5.4).
pub const DEFAULT_CACHE_ROWS: usize = 512;

/// The embedded table store. One instance owns its FS stack.
#[derive(Debug)]
pub struct MiniDb {
    /// The file system server stack underneath (public for stats).
    pub fs: Xv6Fs,
    table_ino: u64,
    index: BTreeMap<String, (u64, u64)>,
    cache: HashMap<String, Vec<u8>>,
    cache_order: VecDeque<String>,
    cache_cap: usize,
    append_off: u64,
    /// Row-cache hits.
    pub cache_hits: u64,
    /// Row-cache misses (FS reads).
    pub cache_misses: u64,
}

impl MiniDb {
    /// Create a database on a fresh ramdisk of `nblocks`.
    pub fn create(w: &mut World, nblocks: usize) -> Self {
        let mut fs = Xv6Fs::mkfs(w, nblocks);
        let table_ino = fs.create(w, "table.db");
        MiniDb {
            fs,
            table_ino,
            index: BTreeMap::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_cap: DEFAULT_CACHE_ROWS,
            append_off: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Reopen a database from an existing device: mount the FS, find the
    /// table file and rebuild the key index by scanning the record log
    /// (newest version of a key wins — the store is log-structured).
    ///
    /// # Panics
    ///
    /// Panics if the device holds no `table.db` (not a database image).
    pub fn reopen(w: &mut World, dev: services::blockdev::BlockDev) -> Self {
        let mut fs = Xv6Fs::mount(w, dev);
        let table_ino = fs.lookup("table.db").expect("not a minidb image");
        let size = fs.size(table_ino);
        let raw = fs.read(w, table_ino, 0, size);
        let mut index = BTreeMap::new();
        let mut off = 0usize;
        while off + 6 <= raw.len() {
            let klen = u16::from_le_bytes(raw[off..off + 2].try_into().unwrap()) as usize;
            if off + 2 + klen + 4 > raw.len() {
                break;
            }
            let key = String::from_utf8_lossy(&raw[off + 2..off + 2 + klen]).into_owned();
            let vlen =
                u32::from_le_bytes(raw[off + 2 + klen..off + 6 + klen].try_into().unwrap()) as u64;
            let voff = (off + 6 + klen) as u64;
            if voff + vlen > raw.len() as u64 {
                break;
            }
            if vlen == 0 {
                index.remove(&key); // tombstone
            } else {
                index.insert(key, (voff, vlen));
            }
            off = (voff + vlen) as usize;
        }
        w.compute(2000 * index.len() as u64 / 100 + 5000); // scan/parse cost
        MiniDb {
            fs,
            table_ino,
            index,
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_cap: DEFAULT_CACHE_ROWS,
            append_off: size,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Set the row-cache capacity.
    pub fn set_cache_rows(&mut self, rows: usize) {
        self.cache_cap = rows;
        while self.cache_order.len() > self.cache_cap {
            if let Some(evict) = self.cache_order.pop_front() {
                self.cache.remove(&evict);
            }
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn cache_put(&mut self, key: &str, row: Vec<u8>) {
        if self.cache.insert(key.to_string(), row).is_none() {
            self.cache_order.push_back(key.to_string());
        }
        while self.cache_order.len() > self.cache_cap {
            if let Some(evict) = self.cache_order.pop_front() {
                self.cache.remove(&evict);
            }
        }
    }

    /// Insert (or overwrite) a row; journaled through the FS.
    pub fn insert(&mut self, w: &mut World, key: &str, row: &[u8]) {
        // Record framing: [klen u16][key][vlen u32][row].
        let mut rec = Vec::with_capacity(6 + key.len() + row.len());
        rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
        rec.extend_from_slice(key.as_bytes());
        rec.extend_from_slice(&(row.len() as u32).to_le_bytes());
        rec.extend_from_slice(row);
        let off = self.append_off;
        FsClient::write(&mut self.fs, w, self.table_ino, off, &rec);
        self.append_off += rec.len() as u64;
        self.index.insert(
            key.to_string(),
            (off + 6 + key.len() as u64, row.len() as u64),
        );
        self.cache_put(key, row.to_vec());
        w.compute(120_000); // SQL parse/plan, btree update, VFS, journal bookkeeping
    }

    /// Read a full row.
    pub fn read(&mut self, w: &mut World, key: &str) -> Option<Vec<u8>> {
        w.compute(30_000); // SQL parse/plan, btree descent
        if let Some(row) = self.cache.get(key) {
            self.cache_hits += 1;
            return Some(row.clone());
        }
        let &(off, len) = self.index.get(key)?;
        self.cache_misses += 1;
        let row = FsClient::read(&mut self.fs, w, self.table_ino, off, len);
        self.cache_put(key, row.clone());
        Some(row)
    }

    /// Update one field's worth of a row (appends a new version).
    pub fn update(&mut self, w: &mut World, key: &str, field: &[u8]) -> bool {
        let Some(mut row) = self.read(w, key) else {
            return false;
        };
        let n = field.len().min(row.len());
        row[..n].copy_from_slice(&field[..n]);
        self.insert(w, key, &row);
        true
    }

    /// Scan `n` rows starting at `key` (inclusive), in key order.
    pub fn scan(&mut self, w: &mut World, key: &str, n: usize) -> Vec<Vec<u8>> {
        let keys: Vec<String> = self
            .index
            .range(key.to_string()..)
            .take(n)
            .map(|(k, _)| k.clone())
            .collect();
        keys.iter().filter_map(|k| self.read(w, k)).collect()
    }

    /// Delete a key: writes a tombstone record (zero-length value) to the
    /// log and drops the index/cache entries — the log-structured
    /// counterpart of SQL `DELETE`.
    ///
    /// Returns whether the key existed.
    pub fn delete(&mut self, w: &mut World, key: &str) -> bool {
        if !self.index.contains_key(key) {
            return false;
        }
        let mut rec = Vec::with_capacity(6 + key.len());
        rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
        rec.extend_from_slice(key.as_bytes());
        rec.extend_from_slice(&0u32.to_le_bytes()); // tombstone
        FsClient::write(&mut self.fs, w, self.table_ino, self.append_off, &rec);
        self.append_off += rec.len() as u64;
        self.index.remove(key);
        self.cache.remove(key);
        w.compute(60_000); // SQL delete path
        true
    }

    /// Read-modify-write (workload F).
    pub fn read_modify_write(&mut self, w: &mut World, key: &str, field: &[u8]) -> bool {
        let Some(mut row) = self.read(w, key) else {
            return false;
        };
        // "Modify": flip the first byte, then apply the new field.
        if let Some(b) = row.first_mut() {
            *b = b.wrapping_add(1);
        }
        let n = field.len().min(row.len());
        row[..n].copy_from_slice(&field[..n]);
        self.insert(w, key, &row);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Invocation, InvokeOpts, IpcSystem, Phase};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::single(Phase::Trap, 1)
        }
    }

    fn world() -> World {
        World::new(Box::new(Free))
    }

    #[test]
    fn insert_read_round_trip() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.insert(&mut w, "k1", b"value-one");
        db.insert(&mut w, "k2", b"value-two");
        assert_eq!(
            db.read(&mut w, "k1").as_deref(),
            Some(b"value-one".as_ref())
        );
        assert_eq!(
            db.read(&mut w, "k2").as_deref(),
            Some(b"value-two".as_ref())
        );
        assert_eq!(db.read(&mut w, "k3"), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn update_changes_prefix() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.insert(&mut w, "k", &[0u8; 100]);
        assert!(db.update(&mut w, "k", &[9u8; 10]));
        let row = db.read(&mut w, "k").unwrap();
        assert_eq!(&row[..10], &[9u8; 10]);
        assert_eq!(&row[10..], &[0u8; 90]);
        assert!(!db.update(&mut w, "missing", &[1]));
    }

    #[test]
    fn reads_survive_cache_eviction() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.set_cache_rows(4);
        for i in 0..32 {
            db.insert(&mut w, &format!("k{i:02}"), format!("v{i}").as_bytes());
        }
        for i in 0..32 {
            assert_eq!(
                db.read(&mut w, &format!("k{i:02}")).unwrap(),
                format!("v{i}").into_bytes()
            );
        }
        assert!(db.cache_misses > 0, "eviction must force FS reads");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        for i in [3, 1, 2, 5, 4] {
            db.insert(&mut w, &format!("k{i}"), format!("v{i}").as_bytes());
        }
        let rows = db.scan(&mut w, "k2", 3);
        assert_eq!(rows, vec![b"v2".to_vec(), b"v3".to_vec(), b"v4".to_vec()]);
    }

    #[test]
    fn writes_hit_the_journal() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        let commits = db.fs.stats.commits;
        db.insert(&mut w, "k", &[1u8; 1000]);
        assert!(db.fs.stats.commits > commits, "insert must commit");
    }

    #[test]
    fn reopen_rebuilds_the_index() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.insert(&mut w, "alpha", b"one");
        db.insert(&mut w, "beta", b"two");
        db.insert(&mut w, "alpha", b"three"); // newer version wins
        let dev = db.fs.dev.clone();
        let mut db2 = MiniDb::reopen(&mut w, dev);
        assert_eq!(db2.len(), 2);
        assert_eq!(
            db2.read(&mut w, "alpha").as_deref(),
            Some(b"three".as_ref())
        );
        assert_eq!(db2.read(&mut w, "beta").as_deref(), Some(b"two".as_ref()));
        assert_eq!(db2.read(&mut w, "gamma"), None);
    }

    #[test]
    fn delete_writes_a_tombstone_that_survives_reopen() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.insert(&mut w, "keep", b"k");
        db.insert(&mut w, "drop", b"d");
        assert!(db.delete(&mut w, "drop"));
        assert!(!db.delete(&mut w, "drop"), "second delete is a no-op");
        assert_eq!(db.read(&mut w, "drop"), None);
        let dev = db.fs.dev.clone();
        let mut db2 = MiniDb::reopen(&mut w, dev);
        assert_eq!(db2.read(&mut w, "drop"), None, "tombstone replayed");
        assert_eq!(db2.read(&mut w, "keep").as_deref(), Some(b"k".as_ref()));
    }

    #[test]
    fn rmw_modifies() {
        let mut w = world();
        let mut db = MiniDb::create(&mut w, 1 << 14);
        db.insert(&mut w, "k", &[10u8; 50]);
        assert!(db.read_modify_write(&mut w, "k", &[7u8; 5]));
        let row = db.read(&mut w, "k").unwrap();
        assert_eq!(&row[..5], &[7u8; 5]);
    }
}
