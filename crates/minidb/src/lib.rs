//! A Sqlite3 stand-in for the Figure 1 / Figure 8 experiments: an
//! embedded table store with write-ahead journaling over the
//! [`services::fs`] file system server.
//!
//! What matters for the reproduction is not SQL but the *IPC pattern*
//! Sqlite3 generates on a microkernel: every committed write turns into
//! journaled block writes against the FS server (which turns each into
//! block-server IPCs), while reads are served from an in-memory page
//! cache when hot (which is why YCSB-C barely improves under XPC, §5.4).
//!
//! The store is log-structured: rows append to a table file; an in-memory
//! index maps keys to (offset, length). Updates append new versions.

#![forbid(unsafe_code)]

pub mod db;
pub mod driver;

pub use db::MiniDb;
pub use driver::{run_workload, YcsbResult};
pub use ycsb::rng;
