//! Deep calling chains on the emulator: the link stack under real depth,
//! handover across many address spaces, and stack-overflow behaviour.

use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc_engine::layout::{LINK_RECORD_BYTES, LINK_STACK_BYTES};
use xpc_engine::XpcAsm;

/// Build a chain of `n` processes where each handler increments a0 and
/// calls the next; the last one just returns. Returns the first entry id.
fn build_chain(k: &mut XpcKernel, n: usize) -> (xpc::kernel::XEntryId, xpc::kernel::ThreadId) {
    let mut entries = Vec::new();
    let mut threads = Vec::new();
    // Build from the tail so each handler knows its callee's entry id.
    for depth in (0..n).rev() {
        let p = k.create_process().unwrap();
        let t = k.create_thread(p).unwrap();
        let mut h = Assembler::new(USER_CODE_VA);
        h.addi(reg::A0, reg::A0, 1);
        if let Some(&(next_entry, _)) = entries.last() {
            // Preserve sp/ra across the nested call (migrating-thread
            // convention), then call onward.
            h.mv(reg::S3, reg::SP);
            h.mv(reg::S4, reg::RA);
            h.li(reg::T6, next_entry as i64);
            h.xcall(reg::T6);
            h.mv(reg::SP, reg::S3);
            h.mv(reg::RA, reg::S4);
        }
        h.ret();
        let hv = k.load_code(p, &h.assemble()).unwrap();
        let entry = k.register_entry(t, t, hv, 1).unwrap();
        // Grant the previous (deeper) thread the right to call us... the
        // *next shallower* handler calls this entry, so grant after we
        // know the caller; collect and grant below.
        entries.push((entry.0, depth));
        threads.push(t);
    }
    // Grant each handler thread the capability for the entry it calls:
    // threads[i] (handler at depth n-1-i) calls entries[i-1].
    for i in 1..entries.len() {
        let callee_entry = xpc::kernel::XEntryId(entries[i - 1].0);
        let owner = threads[i - 1];
        let caller = threads[i];
        k.grant_xcall(owner, caller, callee_entry).unwrap();
    }
    (
        xpc::kernel::XEntryId(entries.last().unwrap().0),
        *threads.last().unwrap(),
    )
}

#[test]
fn twenty_process_chain_counts_every_hop() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let n = 20;
    let (first_entry, first_owner) = build_chain(&mut k, n);

    let client_proc = k.create_process().unwrap();
    let client = k.create_thread(client_proc).unwrap();
    k.grant_xcall(first_owner, client, first_entry).unwrap();

    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::A0, 0);
    c.li(reg::T6, first_entry.0 as i64);
    c.xcall(reg::T6);
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let cv = k.load_code(client_proc, &c.assemble()).unwrap();
    k.enter_thread(client, cv, &[]).unwrap();
    let ev = k.run(50_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(n as u64), "every hop counted");
    let st = k.engine().stats;
    assert_eq!(st.xcalls, n as u64);
    assert_eq!(st.xrets, n as u64);
    assert_eq!(k.engine().regs.link_sp, 0, "stack fully unwound");
}

#[test]
fn link_stack_overflow_raises_invalid_linkage() {
    // A self-recursive entry with enough contexts deepens the stack until
    // the 8 KiB link stack is full: the engine must trap, not corrupt.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let capacity = (LINK_STACK_BYTES / LINK_RECORD_BYTES) as i64;

    // Handler: call itself forever (context pool is large enough that
    // the link stack, not the context pool, is the limit).
    let mut h = Assembler::new(USER_CODE_VA);
    h.li(reg::T6, 1); // first registered entry id
    h.xcall(reg::T6);
    h.ret();
    let hv = k.load_code(p, &h.assemble()).unwrap();
    let entry = k.register_entry(t, t, hv, capacity as u64 + 8).unwrap();
    assert_eq!(entry.0, 1);
    k.grant_xcall(t, t, entry).unwrap();

    let client_proc = k.create_process().unwrap();
    let client = k.create_thread(client_proc).unwrap();
    k.grant_xcall(t, client, entry).unwrap();
    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let cv = k.load_code(client_proc, &c.assemble()).unwrap();
    k.enter_thread(client, cv, &[]).unwrap();
    match k.run(50_000_000).unwrap() {
        KernelEvent::Fault { cause, .. } => {
            assert_eq!(cause, rv64::trap::Cause::InvalidLinkage);
        }
        other => panic!("expected link-stack overflow fault, got {other:?}"),
    }
    // The engine refused the push that would overflow: depth is bounded.
    assert!(k.engine().regs.link_sp + LINK_RECORD_BYTES > LINK_STACK_BYTES);
}
