//! End-to-end IPC scenarios on the emulated machine: real page tables,
//! real `xcall`/`xret`, real relay segments.

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig, ERR_TIMEOUT};
use xpc::layout::USER_CODE_VA;
use xpc::trampoline::ERR_NO_CONTEXT;
use xpc_engine::csr_map;
use xpc_engine::XpcAsm;

/// Shorthand: assemble code starting at the process's first code VA.
fn asm() -> Assembler {
    Assembler::new(USER_CODE_VA)
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

#[test]
fn cross_process_call_round_trip() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Server handler: a0 += 1000; return.
    let mut h = asm();
    h.li(reg::T1, 1000);
    h.add(reg::A0, reg::A0, reg::T1);
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();

    let entry = k.register_entry(server, server, handler_va, 2).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    // Client: xcall entry with a0 = 7; exit with the result.
    let mut c = asm();
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[7]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(1007));

    // The engine really crossed address spaces and back.
    let st = k.engine().stats;
    assert_eq!(st.xcalls, 1);
    assert_eq!(st.xrets, 1);
}

#[test]
fn relay_segment_passes_message_zero_copy() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Server handler: sum the bytes of the relay segment it was handed.
    let mut h = asm();
    h.csrr(reg::T1, csr_map::XPC_SEG_VA);
    h.csrr(reg::T2, csr_map::XPC_SEG_LEN_PERM);
    h.slli(reg::T2, reg::T2, 16); // strip the permission bit,
    h.srli(reg::T2, reg::T2, 16); // keep the 48-bit length
    h.li(reg::A0, 0);
    h.label("loop");
    h.beq(reg::T2, reg::ZERO, "done");
    h.lbu(reg::T3, reg::T1, 0);
    h.add(reg::A0, reg::A0, reg::T3);
    h.addi(reg::T1, reg::T1, 1);
    h.addi(reg::T2, reg::T2, -1);
    h.j("loop");
    h.label("done");
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    // Client writes the message *through the segment window* itself.
    let seg = k.alloc_relay_seg(client, 8).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;

    let mut c = asm();
    c.li(reg::T1, seg_va as i64);
    for (i, b) in [3i64, 9, 27, 81].iter().enumerate() {
        c.li(reg::T2, *b);
        c.sb(reg::T2, reg::T1, i as i64);
    }
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    // 3+9+27+81 = 120 plus four zero bytes (segment is 8 bytes long).
    assert_eq!(ev, KernelEvent::ThreadExit(120));
    // Zero-copy: the client's stores landed in the segment's physical
    // frames, and the server read the same frames.
    assert_eq!(k.read_seg(seg, 0, 4).unwrap(), vec![3, 9, 27, 81]);
}

#[test]
fn capability_denied_without_grant() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    let mut h = asm();
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    // No grant_xcall for the client.

    let mut c = asm();
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    match k.run(100_000).unwrap() {
        KernelEvent::Fault { cause, tval, .. } => {
            assert_eq!(cause, Cause::InvalidXcallCap);
            assert_eq!(tval, entry.0);
        }
        other => panic!("expected capability fault, got {other:?}"),
    }
}

#[test]
fn grant_requires_grant_cap() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();
    let outsider = k.create_thread(pa).unwrap();

    let mut h = asm();
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();

    // The outsider holds no grant-cap, so it cannot grant.
    assert!(k.grant_xcall(outsider, client, entry).is_err());
    // The server can delegate the grant-cap, after which it works.
    k.grant_grant(server, outsider, entry).unwrap();
    k.grant_xcall(outsider, client, entry).unwrap();
}

#[test]
fn three_process_chain_with_termination_unwinds_to_root() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let pc = k.create_process().unwrap();
    let ta = k.create_thread(pa).unwrap();
    let tb = k.create_thread(pb).unwrap();
    let tc = k.create_thread(pc).unwrap();

    // C's handler: spin a while (so the host can kill B mid-call), then
    // return 5.
    let mut hc = asm();
    hc.li(reg::T1, 20_000);
    hc.label("spin");
    hc.addi(reg::T1, reg::T1, -1);
    hc.bne(reg::T1, reg::ZERO, "spin");
    hc.li(reg::A0, 5);
    hc.ret();
    let hc_va = k.load_code(pc, &hc.assemble()).unwrap();
    let entry_c = k.register_entry(tc, tc, hc_va, 1).unwrap();

    // B's handler: call C, add 100, return.
    let mut hb = asm();
    hb.li(reg::T6, entry_c.0 as i64);
    hb.xcall(reg::T6);
    hb.addi(reg::A0, reg::A0, 100);
    hb.ret();
    let hb_va = k.load_code(pb, &hb.assemble()).unwrap();
    let entry_b = k.register_entry(tb, tb, hb_va, 1).unwrap();

    k.grant_xcall(tc, tb, entry_c).unwrap();
    k.grant_xcall(tb, ta, entry_b).unwrap();

    // A: call B, exit with the result.
    let mut ca = asm();
    ca.li(reg::T6, entry_b.0 as i64);
    ca.xcall(reg::T6);
    exit_syscall(&mut ca);
    let ca_va = k.load_code(pa, &ca.assemble()).unwrap();

    k.enter_thread(ta, ca_va, &[]).unwrap();
    // Run until we are (with high probability) inside C's spin loop.
    let ev = k.run(5_000).unwrap();
    assert_eq!(ev, KernelEvent::Timeout, "C should still be spinning");

    // Kill B while its call to C is outstanding (§4.2's A -> B -> C case).
    k.terminate_process(pb).unwrap();
    assert!(!k.is_alive(pb).unwrap());

    // C finishes and xrets: B's linkage record is dead, so the kernel
    // unwinds to A with a timeout error.
    let ev = k.run(10_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(ERR_TIMEOUT));
}

#[test]
fn per_invocation_contexts_exhaust_gracefully() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Handler (max_contexts = 1): on its first invocation it re-enters
    // itself; the nested call must fail fast with ERR_NO_CONTEXT, which
    // the handler then propagates +1.
    // a1 = recursion flag (0 = outer call).
    let mut h = asm();
    h.bne(reg::A1, reg::ZERO, "inner");
    h.li(reg::A1, 1);
    h.li(reg::T6, 1); // entry id 1 (first registered; 0 is reserved)
    h.xcall(reg::T6);
    h.addi(reg::A0, reg::A0, 1);
    h.ret();
    h.label("inner");
    h.li(reg::A0, 7777); // never reached: no context is available
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    assert_eq!(entry.0, 1, "test encodes entry id 1 in the handler");
    k.grant_xcall(server, client, entry).unwrap();
    // The handler thread itself needs the capability for the nested call.
    k.grant_xcall(server, server, entry).unwrap();

    let mut c = asm();
    c.li(reg::A1, 0);
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(
        ev,
        KernelEvent::ThreadExit((ERR_NO_CONTEXT + 1) as u64),
        "nested call fails fast, outer call succeeds"
    );
}

#[test]
fn seg_mask_shrinks_what_callee_sees() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Server: return the segment length it sees.
    let mut h = asm();
    h.csrr(reg::A0, csr_map::XPC_SEG_LEN_PERM);
    h.slli(reg::A0, reg::A0, 16);
    h.srli(reg::A0, reg::A0, 16);
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    let seg = k.alloc_relay_seg(client, 4096).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;

    // Client masks the segment down to 64 bytes at +128 before calling.
    let mut c = asm();
    c.li(reg::T1, (seg_va + 128) as i64);
    c.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    c.li(reg::T1, 64);
    c.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(64), "callee sees only the mask");
}

#[test]
fn second_call_is_cheaper_than_first() {
    // Warm-up effects (caches, TLB fills) must show up in the timing
    // model: the second identical IPC costs fewer cycles than the first.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    let mut h = asm();
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    // Client: two calls with a cycle read around each (rdcycle via csr).
    let mut c = asm();
    for _ in 0..2 {
        c.li(reg::T6, entry.0 as i64);
        c.xcall(reg::T6);
    }
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    // Measure host-side by stepping: record cycles at each xcall return.
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(0));
    let st = k.engine().stats;
    assert_eq!(st.xcalls, 2);
    assert_eq!(st.xrets, 2);
}

#[test]
fn killing_the_running_callee_returns_to_the_caller() {
    // A calls B; while B executes, the kernel kills *B itself* (not a
    // middle process). B's zeroed page table faults on its next fetch,
    // and the kernel returns control to A with a timeout error.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let ta = k.create_thread(pa).unwrap();
    let tb = k.create_thread(pb).unwrap();

    let mut hb = asm();
    hb.li(reg::T1, 50_000);
    hb.label("spin");
    hb.addi(reg::T1, reg::T1, -1);
    hb.bne(reg::T1, reg::ZERO, "spin");
    hb.ret();
    let hb_va = k.load_code(pb, &hb.assemble()).unwrap();
    let entry_b = k.register_entry(tb, tb, hb_va, 1).unwrap();
    k.grant_xcall(tb, ta, entry_b).unwrap();

    let mut ca = asm();
    ca.li(reg::T6, entry_b.0 as i64);
    ca.xcall(reg::T6);
    exit_syscall(&mut ca);
    let ca_va = k.load_code(pa, &ca.assemble()).unwrap();

    k.enter_thread(ta, ca_va, &[]).unwrap();
    let ev = k.run(5_000).unwrap();
    assert_eq!(ev, KernelEvent::Timeout, "B should still be spinning");
    k.terminate_process(pb).unwrap();
    // B's next instruction fetch faults in the zeroed space; the kernel
    // unwinds to A.
    let ev = k.run(10_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(ERR_TIMEOUT));
}
