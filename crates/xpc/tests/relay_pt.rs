//! The §6.2 "Relay Page Table" extension end to end: non-contiguous
//! backing memory behind the relay window, page-granular masks, and the
//! cost difference against contiguous segments.

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc_engine::{csr_map, XpcAsm};

fn asm() -> Assembler {
    Assembler::new(USER_CODE_VA)
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

/// Handler: sum every byte of the current relay segment.
fn sum_handler() -> Vec<u32> {
    let mut h = asm();
    h.csrr(reg::T1, csr_map::XPC_SEG_VA);
    h.csrr(reg::T2, csr_map::XPC_SEG_LEN_PERM);
    h.slli(reg::T2, reg::T2, 16);
    h.srli(reg::T2, reg::T2, 16);
    h.li(reg::A0, 0);
    h.label("sum");
    h.beq(reg::T2, reg::ZERO, "out");
    h.lbu(reg::T3, reg::T1, 0);
    h.add(reg::A0, reg::A0, reg::T3);
    h.addi(reg::T1, reg::T1, 1);
    h.addi(reg::T2, reg::T2, -1);
    h.j("sum");
    h.label("out");
    h.ret();
    h.assemble()
}

#[test]
fn paged_segment_with_scattered_frames_round_trips() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Populate the free list so the paged allocation's frames come out
    // scattered (LIFO reuse reverses physical order).
    let tmp = k.alloc_relay_seg(client, 3 * 4096).unwrap();
    k.free_relay_seg(client, tmp).unwrap();

    let seg = k.alloc_relay_pt_seg(client, 3).unwrap();
    assert!(k.segs.seg_reg(seg).paged);
    k.install_seg(client, seg).unwrap();

    // The window must behave exactly like contiguous memory: write a
    // pattern across page boundaries host-side, sum it guest-side.
    let payload: Vec<u8> = (0..3 * 4096u32).map(|i| (i % 7) as u8).collect();
    k.write_seg(seg, 0, &payload).unwrap();
    assert_eq!(
        k.read_seg(seg, 4090, 12).unwrap(),
        payload[4090..4102].to_vec(),
        "host view crosses page boundary"
    );

    let handler_va = k.load_code(pb, &sum_handler()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    let mut c = asm();
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();
    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(10_000_000).unwrap();
    let expected: u64 = payload.iter().map(|&b| b as u64).sum();
    assert_eq!(ev, KernelEvent::ThreadExit(expected));
}

#[test]
fn paged_masks_must_be_page_granular() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let client = k.create_thread(pa).unwrap();
    let seg = k.alloc_relay_pt_seg(client, 2).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;

    // Sub-page mask on a paged segment: invalid seg-mask exception.
    let mut c = asm();
    c.li(reg::T1, (seg_va + 64) as i64);
    c.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    c.li(reg::T1, 128);
    c.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    exit_syscall(&mut c);
    let va = k.load_code(pa, &c.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    match k.run(100_000).unwrap() {
        KernelEvent::Fault { cause, .. } => assert_eq!(cause, Cause::InvalidSegMask),
        other => panic!("sub-page mask must fault, got {other:?}"),
    }
}

#[test]
fn page_granular_mask_selects_the_right_page() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    let seg = k.alloc_relay_pt_seg(client, 3).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;
    // Page 0 = 1s, page 1 = 2s, page 2 = 3s.
    for p in 0..3u8 {
        k.write_seg(seg, p as u64 * 4096, &vec![p + 1; 4096])
            .unwrap();
    }

    let handler_va = k.load_code(pb, &sum_handler()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    // Mask down to page 1 only; the callee must see exactly 4096 * 2.
    let mut c = asm();
    c.li(reg::T1, (seg_va + 4096) as i64);
    c.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    c.li(reg::T1, 4096);
    c.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let va = k.load_code(pa, &c.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    let ev = k.run(10_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(4096 * 2));
}

#[test]
fn paged_access_costs_more_than_contiguous() {
    // The §6.2 trade-off: one extra walk access per translation. Measure
    // a guest loop summing 512 bytes through each window type.
    fn run_sum(paged: bool) -> u64 {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let client = k.create_thread(pa).unwrap();
        let seg = if paged {
            k.alloc_relay_pt_seg(client, 1).unwrap()
        } else {
            k.alloc_relay_seg(client, 4096).unwrap()
        };
        k.install_seg(client, seg).unwrap();
        let seg_va = k.segs.seg_reg(seg).va_base;
        let mut c = asm();
        c.li(reg::T1, seg_va as i64);
        c.li(reg::T2, 512);
        c.li(reg::A0, 0);
        c.label("sum");
        c.lbu(reg::T3, reg::T1, 0);
        c.add(reg::A0, reg::A0, reg::T3);
        c.addi(reg::T1, reg::T1, 1);
        c.addi(reg::T2, reg::T2, -1);
        c.bne(reg::T2, reg::ZERO, "sum");
        exit_syscall(&mut c);
        let va = k.load_code(pa, &c.assemble()).unwrap();
        k.enter_thread(client, va, &[]).unwrap();
        let before = k.machine.core.cycles;
        let ev = k.run(1_000_000).unwrap();
        assert_eq!(ev, KernelEvent::ThreadExit(0));
        k.machine.core.cycles - before
    }
    let contiguous = run_sum(false);
    let paged = run_sum(true);
    assert!(
        paged > contiguous,
        "paged ({paged}) must pay the extra walk over contiguous ({contiguous})"
    );
    assert!(
        paged < contiguous * 4,
        "but stay the same order of magnitude"
    );
}

#[test]
fn free_returns_scattered_frames() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let client = k.create_thread(pa).unwrap();
    let seg = k.alloc_relay_pt_seg(client, 4).unwrap();
    k.free_relay_seg(client, seg).unwrap();
    // Freed frames are reusable: a fresh contiguous allocation succeeds
    // and the registry invariants hold.
    let seg2 = k.alloc_relay_seg(client, 4096).unwrap();
    assert!(k.segs.check_invariants().is_ok());
    assert!(!k.segs.seg_reg(seg2).paged);
}

#[test]
fn seg_access_with_wrapping_offset_is_a_typed_error() {
    use xpc::error::XpcError;
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let t = k.create_thread(pa).unwrap();
    let seg = k.alloc_relay_seg(t, 64).unwrap();
    // offset + len wraps u64 — an unchecked sum would pass the bound.
    let err = k.write_seg(seg, u64::MAX - 8, &[0u8; 32]).unwrap_err();
    assert!(matches!(err, XpcError::SegOutOfBounds { .. }), "{err}");
    let err = k.read_seg(seg, u64::MAX - 8, 32).unwrap_err();
    assert!(matches!(err, XpcError::SegOutOfBounds { .. }), "{err}");
    // A plain escape is the same typed error, and in-bounds still works.
    assert!(k.read_seg(seg, 60, 8).is_err());
    k.write_seg(seg, 0, &[1u8; 64]).unwrap();
    assert_eq!(k.read_seg(seg, 0, 64).unwrap(), vec![1u8; 64]);
}
