//! §6.1 defenses end to end: the credit system against context-exhaustion
//! DoS, and the kernel timeout mechanism for hung callees.

use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig, ERR_TIMEOUT};
use xpc::layout::USER_CODE_VA;
use xpc::trampoline::ERR_NO_CREDIT;
use xpc_engine::XpcAsm;

fn asm() -> Assembler {
    Assembler::new(USER_CODE_VA)
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

#[test]
fn credits_throttle_a_greedy_client() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Handler: return 1.
    let mut h = asm();
    h.li(reg::A0, 1);
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k
        .register_entry_with_credits(server, server, handler_va, 2)
        .unwrap();
    k.grant_xcall_with_credits(server, client, entry, 3)
        .unwrap();

    // Client: call 5 times, summing results (successes return 1, the
    // starved calls return ERR_NO_CREDIT).
    let mut c = asm();
    c.li(reg::S2, 0);
    for _ in 0..5 {
        c.li(reg::T6, entry.0 as i64);
        c.xcall(reg::T6);
        c.add(reg::S2, reg::S2, reg::A0);
    }
    c.mv(reg::A0, reg::S2);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(10_000_000).unwrap();
    // 3 funded calls succeed (3 * 1), 2 starved calls return -12 each.
    let expected = (3i64 + 2 * ERR_NO_CREDIT) as u64;
    assert_eq!(ev, KernelEvent::ThreadExit(expected));
    assert_eq!(k.credits_of(entry, client).unwrap(), 0, "drained");
}

#[test]
fn refill_restores_service() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    let mut h = asm();
    h.li(reg::A0, 42);
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k
        .register_entry_with_credits(server, server, handler_va, 1)
        .unwrap();
    k.grant_xcall_with_credits(server, client, entry, 0)
        .unwrap();

    let mut c = asm();
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    // Unfunded: fails fast.
    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(ERR_NO_CREDIT as u64));

    // Refilled: works.
    k.refill_credits(entry, client, 10).unwrap();
    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(42));
    assert_eq!(k.credits_of(entry, client).unwrap(), 9);
}

#[test]
fn plain_entries_are_uncredited() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();
    let mut h = asm();
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    assert!(k
        .grant_xcall_with_credits(server, client, entry, 5)
        .is_err());
    assert!(k.credits_of(entry, client).is_err());
}

#[test]
fn timeout_mechanism_returns_control_to_the_caller() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    // Handler: hang forever (the §6.1 "callee hangs" scenario).
    let mut h = asm();
    h.label("hang");
    h.j("hang");
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    let mut c = asm();
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(50_000).unwrap();
    assert_eq!(ev, KernelEvent::Timeout, "callee must be hanging");

    // The kernel's timeout policy fires: force control back to the
    // caller with a timeout error.
    assert!(k.force_timeout_unwind().unwrap());
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(ERR_TIMEOUT));
}

#[test]
fn timeout_unwind_without_outstanding_call_is_a_noop() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let client = k.create_thread(pa).unwrap();
    let mut c = asm();
    c.li(reg::A0, 5);
    exit_syscall(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();
    k.enter_thread(client, client_va, &[]).unwrap();
    assert!(!k.force_timeout_unwind().unwrap(), "empty link stack");
    let ev = k.run(1_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(5));
}
