//! `swapseg` + seg-list end to end: a guest thread juggling multiple
//! relay segments (§3.3 "Multiple relay-segs"), with kernel-stashed
//! descriptors and real guest stores through each window.

use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc_engine::XpcAsm;

#[test]
fn guest_swaps_between_two_segments_and_writes_both() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let t = k.create_thread(pa).unwrap();

    // Segment A live in seg-reg; segment B stashed in seg-list slot 2.
    let seg_a = k.alloc_relay_seg(t, 4096).unwrap();
    let seg_b = k.alloc_relay_seg(t, 4096).unwrap();
    k.install_seg(t, seg_a).unwrap();
    k.stash_seg(pa, 2, seg_b).unwrap();
    let va_a = k.segs.seg_reg(seg_a).va_base;
    let va_b = k.segs.seg_reg(seg_b).va_base;

    // Guest: write 0xAA to A, swap in B, write 0xBB to B, swap back,
    // append 0xA1 to A.
    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::T1, va_a as i64);
    c.li(reg::T2, 0xAA);
    c.sb(reg::T2, reg::T1, 0);
    c.li(reg::A0, 2);
    c.swapseg(reg::A0); // seg-reg <-> slot 2 (now B is live)
    c.li(reg::T1, va_b as i64);
    c.li(reg::T2, 0xBB);
    c.sb(reg::T2, reg::T1, 0);
    c.li(reg::A0, 2);
    c.swapseg(reg::A0); // back to A
    c.li(reg::T1, va_a as i64);
    c.li(reg::T2, 0xA1);
    c.sb(reg::T2, reg::T1, 1);
    c.li(reg::A0, 0);
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(t, va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(0));
    assert_eq!(k.read_seg(seg_a, 0, 2).unwrap(), vec![0xAA, 0xA1]);
    assert_eq!(k.read_seg(seg_b, 0, 1).unwrap(), vec![0xBB]);
    assert_eq!(k.engine().stats.swapsegs, 2);
}

#[test]
fn writes_outside_the_live_segment_fault() {
    // While B is stashed, its window must be unreachable: the
    // single-live-segment rule is what transfers ownership atomically.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let t = k.create_thread(pa).unwrap();
    let seg_a = k.alloc_relay_seg(t, 4096).unwrap();
    let seg_b = k.alloc_relay_seg(t, 4096).unwrap();
    k.install_seg(t, seg_a).unwrap();
    k.stash_seg(pa, 0, seg_b).unwrap();
    let va_b = k.segs.seg_reg(seg_b).va_base;

    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::T1, va_b as i64);
    c.li(reg::T2, 1);
    c.sb(reg::T2, reg::T1, 0); // B is not live: store page fault
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let va = k.load_code(pa, &c.assemble()).unwrap();
    k.enter_thread(t, va, &[]).unwrap();
    match k.run(100_000).unwrap() {
        KernelEvent::Fault { cause, tval, .. } => {
            assert_eq!(cause, rv64::trap::Cause::StorePageFault);
            assert_eq!(tval, va_b);
        }
        other => panic!("stashed segment must be unreachable, got {other:?}"),
    }
}
