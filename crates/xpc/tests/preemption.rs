//! Preemptive scheduling on top of the split thread state (§4.2): the
//! machine timer interrupts running user code, the kernel round-robins
//! between threads, and everyone finishes with intact register state.

use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;

/// A counting loop: increments the u64 at `counter_va` `n` times, then
/// exits with the final value (which it keeps in a register the whole
/// time — so lost register state would be detected).
fn counting_thread(counter_va: u64, n: i64) -> Vec<u32> {
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T1, counter_va as i64);
    a.li(reg::S2, n);
    a.li(reg::S3, 0); // running copy of the count, in a register
    a.label("loop");
    a.ld(reg::T2, reg::T1, 0);
    a.addi(reg::T2, reg::T2, 1);
    a.sd(reg::T2, reg::T1, 0);
    a.addi(reg::S3, reg::S3, 1);
    a.bne(reg::S3, reg::S2, "loop");
    a.mv(reg::A0, reg::S3);
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
    a.assemble()
}

#[test]
fn timer_round_robin_between_two_processes() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let ta = k.create_thread(pa).unwrap();
    let tb = k.create_thread(pb).unwrap();

    let n = 400i64;
    let (ctr_a_va, ctr_a_pa) = k.alloc_data(pa, 1).unwrap();
    let (ctr_b_va, ctr_b_pa) = k.alloc_data(pb, 1).unwrap();
    let code_a = k.load_code(pa, &counting_thread(ctr_a_va, n)).unwrap();
    let code_b = k.load_code(pb, &counting_thread(ctr_b_va, n)).unwrap();

    k.enter_thread(ta, code_a, &[]).unwrap();
    k.set_timer(700);
    // Thread B starts lazily on its first turn.
    let mut b_started = false;
    let mut current = ta;
    let mut ticks = 0u32;
    let mut done = Vec::new();

    while done.len() < 2 {
        match k.run(1_000_000).unwrap() {
            KernelEvent::TimerFired => {
                ticks += 1;
                // Round-robin to the other thread (if it hasn't exited).
                let next = if current == ta { tb } else { ta };
                if !done.contains(&next) {
                    if next == tb && !b_started {
                        k.enter_thread(tb, code_b, &[]).unwrap();
                        b_started = true;
                    } else {
                        k.resume_thread(next).unwrap();
                    }
                    current = next;
                }
                k.set_timer(700);
            }
            KernelEvent::ThreadExit(v) => {
                assert_eq!(v, n as u64, "thread's register count survived preemption");
                done.push(current);
                if done.len() == 2 {
                    break;
                }
                // Switch to the remaining thread.
                let next = if current == ta { tb } else { ta };
                if next == tb && !b_started {
                    k.enter_thread(tb, code_b, &[]).unwrap();
                    b_started = true;
                } else {
                    k.resume_thread(next).unwrap();
                }
                current = next;
                k.set_timer(700);
            }
            other => panic!("unexpected event: {other:?}"),
        }
        assert!(ticks < 10_000, "livelock");
    }

    // Both memory counters completed despite interleaving.
    let a_count = k.machine.core.mem.read(ctr_a_pa, 8).unwrap();
    let b_count = k.machine.core.mem.read(ctr_b_pa, 8).unwrap();
    assert_eq!(a_count, n as u64);
    assert_eq!(b_count, n as u64);
    assert!(ticks >= 4, "the timer really preempted ({ticks} ticks)");
}

#[test]
fn disarmed_timer_never_fires() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let ta = k.create_thread(pa).unwrap();
    let (ctr_va, _) = k.alloc_data(pa, 1).unwrap();
    let code = k.load_code(pa, &counting_thread(ctr_va, 200)).unwrap();
    k.enter_thread(ta, code, &[]).unwrap();
    k.set_timer(0); // disarm
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(200));
}

#[test]
fn preemption_preserves_xpc_state_across_a_call() {
    // Preempt while the migrating thread is inside a *callee*, switch to
    // another thread, come back, and the xret must still work — the
    // engine per-thread registers (link stack!) are part of the saved
    // runtime state.
    use xpc_engine::XpcAsm;
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();
    let other = k.create_thread(pa).unwrap();

    // Server handler: spin a while, then return 7.
    let mut h = Assembler::new(USER_CODE_VA);
    h.li(reg::T1, 3000);
    h.label("spin");
    h.addi(reg::T1, reg::T1, -1);
    h.bne(reg::T1, reg::ZERO, "spin");
    h.li(reg::A0, 7);
    h.ret();
    let handler_va = k.load_code(pb, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::T6, entry.0 as i64);
    c.xcall(reg::T6);
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    // A second, independent thread to run during the preemption window.
    let (ctr_va, _) = k.alloc_data(pa, 1).unwrap();
    let other_code_va = k.load_code(pa, &counting_thread(ctr_va, 50)).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    k.set_timer(800); // fires while the handler spins in the *server's* space
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::TimerFired);

    // Run the other thread to completion, then resume the preempted call.
    k.enter_thread(other, other_code_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(50));

    k.resume_thread(client).unwrap();
    let ev = k.run(10_000_000).unwrap();
    assert_eq!(
        ev,
        KernelEvent::ThreadExit(7),
        "xret survived the preemption"
    );
}
