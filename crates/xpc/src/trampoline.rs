//! Generated guest code: the per-invocation C-stack trampoline (§4.2) and
//! the caller-side context wrappers measured in Figure 5.
//!
//! The callee trampoline is the XPC library code prepended to every
//! x-entry: it claims an idle XPC context (execution stack + local data),
//! switches to its C-stack, invokes the handler, releases the context and
//! `xret`s. With `max_contexts` contexts one x-entry serves that many
//! simultaneous callers (the thread model of §3.1).
//!
//! The caller wrappers model the save/restore convention: **full context**
//! spills every caller-visible register around the `xcall` (what a
//! mutually-distrusting pair must do), **partial context** only the
//! callee-clobbered minimum (§2.2's observation that callers and callees
//! may define their own calling conventions).

use rv64::{reg, Assembler};
use xpc_engine::XpcAsm;

/// Error code the trampoline returns (in `a0`) when no XPC context is
/// idle and the entry's policy is fail-fast.
pub const ERR_NO_CONTEXT: i64 = -11;

/// Error code the trampoline returns (in `a0`) when the caller is out of
/// credits (the §6.1 DoS defense, as in M3 and Intel QP credit systems).
pub const ERR_NO_CREDIT: i64 = -12;

/// Slots in a credit table (indexed by caller identity, see
/// [`credit_slot_for_cap`]).
pub const CREDIT_SLOTS: u64 = 256;

/// The credit-table slot for a caller whose `xcall-cap-reg` is `cap_pa`.
///
/// The caller identity the hardware deposits in `t0` is its capability
/// bitmap address — unforgeable, kernel-assigned. The kernel colors
/// bitmap addresses (see `XpcKernel::create_thread`), so bits 8.. of the
/// address discriminate callers; the kernel asserts slot uniqueness when
/// it grants credits.
pub fn credit_slot_for_cap(cap_pa: u64) -> u64 {
    (cap_pa >> 8) % CREDIT_SLOTS
}

/// Parameters for [`emit_callee_trampoline`].
#[derive(Debug, Clone, Copy)]
pub struct TrampolineSpec {
    /// VA of the context-flag array (one u64 per context, 0 = idle).
    pub flags_va: u64,
    /// VA of the first C-stack (each `c_stack_bytes`, stacks grow down).
    pub cstacks_va: u64,
    /// Bytes per C-stack.
    pub c_stack_bytes: u64,
    /// Number of contexts.
    pub max_contexts: u64,
    /// VA of the real handler.
    pub handler_va: u64,
    /// Optional per-caller credit table (§6.1): a [`CREDIT_SLOTS`]-entry
    /// u64 array in the server's space. When set, the trampoline charges
    /// one credit per invocation before assigning a context and fails
    /// fast with [`ERR_NO_CREDIT`] at zero.
    pub credit_table_va: Option<u64>,
}

/// Emit the callee-side trampoline at the assembler's current position.
///
/// Register contract on entry (migrating thread): `a0..a7` carry the
/// caller's arguments, `t0` the caller identity; everything else is dead.
/// The handler is a normal function returning through `ra`, result in
/// `a0`.
pub fn emit_callee_trampoline(a: &mut Assembler, spec: &TrampolineSpec) {
    let uniq = a.here(); // make labels unique per emission site
    let l = |n: &str| format!("xpc_tramp_{n}_{uniq:x}");

    // Credit check (§6.1): charge the caller (identified by t0, which the
    // engine set and the caller cannot forge) one credit, or fail fast.
    if let Some(table_va) = spec.credit_table_va {
        a.li(reg::T1, table_va as i64);
        a.srli(reg::T2, reg::T0, 8);
        a.andi(reg::T2, reg::T2, (CREDIT_SLOTS - 1) as i64);
        a.slli(reg::T2, reg::T2, 3);
        a.add(reg::T1, reg::T1, reg::T2);
        a.ld(reg::T3, reg::T1, 0);
        a.beq(reg::T3, reg::ZERO, &l("no_credit"));
        a.addi(reg::T3, reg::T3, -1);
        a.sd(reg::T3, reg::T1, 0);
    }

    // Select an idle context. The claim is an atomic swap (RV64A), so
    // two simultaneous callers racing for the same slot cannot both win —
    // the paper's model explicitly supports "one x-entry of a server to
    // be invoked by multiple clients at the same time" (§4.2).
    a.li(reg::T1, spec.flags_va as i64);
    a.li(reg::T2, spec.max_contexts as i64);
    a.li(reg::T3, 0);
    a.label(&l("select"));
    a.bge(reg::T3, reg::T2, &l("no_ctx"));
    a.slli(reg::T4, reg::T3, 3);
    a.add(reg::T4, reg::T4, reg::T1);
    a.li(reg::T5, 1);
    a.amoswap_d(reg::T5, reg::T5, reg::T4);
    a.beq(reg::T5, reg::ZERO, &l("claim"));
    a.addi(reg::T3, reg::T3, 1);
    a.j(&l("select"));

    // Claimed: switch to the context's C-stack.
    a.label(&l("claim"));
    a.li(reg::T6, spec.cstacks_va as i64);
    a.addi(reg::T3, reg::T3, 1);
    a.li(reg::T5, spec.c_stack_bytes as i64);
    a.mul(reg::T3, reg::T3, reg::T5);
    a.add(reg::SP, reg::T6, reg::T3);
    // Keep the flag slot address across the handler call.
    a.addi(reg::SP, reg::SP, -16);
    a.sd(reg::T4, reg::SP, 0);

    // Invoke the handler.
    a.li(reg::T3, spec.handler_va as i64);
    a.jalr(reg::RA, reg::T3, 0);

    // Release the context and return to the caller's domain.
    a.ld(reg::T4, reg::SP, 0);
    a.addi(reg::SP, reg::SP, 16);
    a.sd(reg::ZERO, reg::T4, 0);
    a.xret();

    // No idle context: fail fast.
    a.label(&l("no_ctx"));
    a.li(reg::A0, ERR_NO_CONTEXT);
    a.xret();

    // Out of credits (only emitted when a credit table is configured;
    // harmless dead code otherwise is avoided by the label being unused).
    if spec.credit_table_va.is_some() {
        a.label(&l("no_credit"));
        a.li(reg::A0, ERR_NO_CREDIT);
        a.xret();
    }
}

/// Which caller-side register convention to wrap an `xcall` with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextMode {
    /// Spill/restore all callee-visible registers (Figure 5 "Full-Cxt").
    Full,
    /// Spill/restore only `sp`/`ra`/`gp`/`tp` (Figure 5 "Partial-Cxt").
    Partial,
}

/// Registers a full-context caller saves around an `xcall` (everything
/// except `zero` and the argument registers, which carry the message).
const FULL_SAVE: [u8; 19] = [
    reg::RA,
    reg::SP,
    reg::GP,
    reg::TP,
    reg::T1,
    reg::T2,
    reg::S0,
    reg::S1,
    reg::S2,
    reg::S3,
    reg::S4,
    reg::S5,
    reg::S6,
    reg::S7,
    reg::S8,
    reg::S9,
    reg::S10,
    reg::S11,
    reg::T3,
];

const PARTIAL_SAVE: [u8; 4] = [reg::RA, reg::SP, reg::GP, reg::TP];

/// The registers a given [`ContextMode`] saves (for harnesses that need
/// to emit the wrapper piecewise around measurement labels).
pub fn save_regs(mode: ContextMode) -> &'static [u8] {
    match mode {
        ContextMode::Full => &FULL_SAVE,
        ContextMode::Partial => &PARTIAL_SAVE,
    }
}

/// Emit a caller-side wrapped `xcall`: save registers to `save_area_va`,
/// place the entry ID in `t6`, `xcall`, restore. The entry ID register is
/// `t6` (not saved) and `t0` is left holding the caller identity handed
/// back by hardware.
pub fn emit_caller_xcall(a: &mut Assembler, mode: ContextMode, save_area_va: u64, entry_id: i64) {
    let regs: &[u8] = match mode {
        ContextMode::Full => &FULL_SAVE,
        ContextMode::Partial => &PARTIAL_SAVE,
    };
    a.li(reg::T5, save_area_va as i64);
    for (i, r) in regs.iter().enumerate() {
        a.sd(*r, reg::T5, (8 * i) as i64);
    }
    a.li(reg::T6, entry_id);
    a.xcall(reg::T6);
    a.li(reg::T5, save_area_va as i64);
    for (i, r) in regs.iter().enumerate() {
        a.ld(*r, reg::T5, (8 * i) as i64);
    }
}

/// Bytes a caller save area must provide.
pub fn save_area_bytes(mode: ContextMode) -> u64 {
    match mode {
        ContextMode::Full => 8 * FULL_SAVE.len() as u64,
        ContextMode::Partial => 8 * PARTIAL_SAVE.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trampoline_assembles() {
        let mut a = Assembler::new(0x1_0000);
        emit_callee_trampoline(
            &mut a,
            &TrampolineSpec {
                flags_va: 0x2000_0000,
                cstacks_va: 0x2000_1000,
                c_stack_bytes: 4096,
                max_contexts: 4,
                handler_va: 0x1_2000,
                credit_table_va: None,
            },
        );
        let words = a.assemble();
        assert!(words.len() > 20);
    }

    #[test]
    fn two_trampolines_in_one_program() {
        // Labels must be unique per emission site.
        let mut a = Assembler::new(0x1_0000);
        let spec = TrampolineSpec {
            flags_va: 0x2000_0000,
            cstacks_va: 0x2000_1000,
            c_stack_bytes: 4096,
            max_contexts: 1,
            handler_va: 0x1_2000,
            credit_table_va: Some(0x2000_4000),
        };
        emit_callee_trampoline(&mut a, &spec);
        emit_callee_trampoline(&mut a, &spec);
        let _ = a.assemble();
    }

    #[test]
    fn full_saves_more_than_partial() {
        assert!(save_area_bytes(ContextMode::Full) > save_area_bytes(ContextMode::Partial));
        let mut full = Assembler::new(0);
        emit_caller_xcall(&mut full, ContextMode::Full, 0x2000_0000, 1);
        let full_len = full.assemble().len();
        let mut part = Assembler::new(0);
        emit_caller_xcall(&mut part, ContextMode::Partial, 0x2000_0000, 1);
        let part_len = part.assemble().len();
        assert!(full_len > 2 * part_len, "full-context wrapper much longer");
    }
}
