//! The prototype kernel: XPC's control plane (§3, §4.2).
//!
//! The kernel runs host-side (it is the machine's firmware/supervisor, not
//! emulated instruction-by-instruction) and manages the four XPC object
//! classes of §4.1: the global x-entry table, per-thread link stacks,
//! per-thread capability bitmaps and per-address-space seg-lists. User
//! code — clients, trampolines, handlers — executes for real on the
//! emulator, and every trap bounces through an M-mode stub back to this
//! control plane.

use crate::error::XpcError;
use crate::layout::{
    CAP_BITMAP_BYTES, C_STACK_BYTES, KSTUB_PA, PALLOC_BASE, SEG_LIST_SLOTS, USER_CODE_VA,
    USER_DATA_VA, USER_STACK_PAGES, USER_STACK_TOP, XENTRY_TABLE_ENTRIES, XENTRY_TABLE_PA,
};
use crate::pagetable::{AddressSpace, PagePerms};
use crate::palloc::{FrameAlloc, FRAME_BYTES};
use crate::seg::{SegHandle, SegOwner, SegRegistry};
use crate::thread::{RuntimeState, SchedState};
use crate::trampoline::{emit_callee_trampoline, TrampolineSpec};
use rv64::cpu::Mode;
use rv64::machine::{Core, Exit};
use rv64::mem::DRAM_BASE;
use rv64::trap::Cause;
use rv64::{reg, Assembler, Machine, MachineConfig};
use xpc_engine::layout::{LinkageRecord, SegDescriptor, LINK_RECORD_BYTES, LINK_STACK_BYTES};
use xpc_engine::{SegMask, SegReg, XEntry, XpcEngine, XpcEngineConfig};

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub u64);

/// Thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u64);

/// x-entry identifier (index into the global table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XEntryId(pub u64);

/// Error value delivered in `a0` when the kernel unwinds a call whose
/// callee/caller terminated (§4.2 returns "a timeout error").
pub const ERR_TIMEOUT: u64 = (-110i64) as u64;

/// Syscall numbers (in `a7`) understood by the kernel stub.
pub mod syscall {
    /// Exit the current thread; `a0` = exit value.
    pub const EXIT: u64 = 0;
    /// No-op/yield (resumes immediately; scheduling is modelled elsewhere).
    pub const YIELD: u64 = 1;
}

/// What happened when the kernel ran the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// Thread exited via the exit syscall; carries `a0`.
    ThreadExit(u64),
    /// User code hit `ebreak` (scenario checkpoint).
    Break,
    /// An XPC or other exception the kernel does not auto-handle.
    Fault {
        /// Trap cause.
        cause: Cause,
        /// Trap value.
        tval: u64,
        /// Faulting PC.
        epc: u64,
    },
    /// Instruction budget exhausted.
    Timeout,
    /// Machine timer fired (preemption point); the interrupted thread is
    /// left resumable via [`XpcKernel::resume_thread`].
    TimerFired,
}

/// Kernel-side hardening switches: the runtime twins of the three
/// temporal rules `xpc-verify` checks statically. Each switch prices a
/// mitigation the static rule proves unnecessary for verified plans:
///
/// * **revocation epochs** — [`XpcKernel::revoke_entry`] opens a new
///   epoch for an x-entry and clears the cap bit in *every* thread's
///   bitmap, so no stale capability from before the revocation
///   survives (a later `xcall` traps `InvalidXcallCap`);
/// * **zero-on-handover** — [`XpcKernel::handover_seg`] scrubs every
///   byte of the relay segment *outside* the masked message window
///   before the receiver can see it, closing the residue leak the
///   static taint automaton flags;
/// * **flow tags** — [`XpcKernel::grant_xcall`] refuses to mint a
///   capability across tenant boundaries ([`XpcKernel::set_tenant`]),
///   so no return can ever pop another tenant's linkage record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelHardening {
    /// Bulk-revoke x-entries with per-entry epochs.
    pub revocation_epochs: bool,
    /// Scrub relay-segment residue on cross-process handover.
    pub zero_on_handover: bool,
    /// Refuse cross-tenant capability grants.
    pub flow_tags: bool,
}

impl KernelHardening {
    /// Every mitigation off (the paper's baseline kernel).
    pub const NONE: KernelHardening = KernelHardening {
        revocation_epochs: false,
        zero_on_handover: false,
        flow_tags: false,
    };
    /// Every mitigation on.
    pub const ALL: KernelHardening = KernelHardening {
        revocation_epochs: true,
        zero_on_handover: true,
        flow_tags: true,
    };
}

#[derive(Debug)]
struct Process {
    space: AddressSpace,
    seg_list_pa: u64,
    code_cursor: u64,
    data_cursor: u64,
    alive: bool,
    /// Tenant label for the flow-tag mitigation (default 0).
    tenant: u64,
}

#[derive(Debug)]
struct Thread {
    process: ProcessId,
    #[allow(dead_code)]
    sched: SchedState,
    runtime: RuntimeState,
    /// x-entries this thread may grant (grant-cap, §4.2).
    grant_caps: Vec<u64>,
}

#[derive(Debug, Clone)]
struct EntryInfo {
    owner_process: ProcessId,
    #[allow(dead_code)]
    handler_va: u64,
    trampoline_va: u64,
    max_contexts: u64,
    /// Physical address of the §6.1 credit table, when enabled.
    credit_table_pa: Option<u64>,
    /// Credit slots in use: (slot, thread), for uniqueness checks.
    credit_slots: Vec<(u64, u64)>,
    /// Revocation epoch: bumped by [`XpcKernel::revoke_entry`]; a cap
    /// granted before the bump no longer exists in any bitmap.
    epoch: u64,
}

/// Boot configuration of the prototype kernel.
#[derive(Debug, Clone)]
pub struct XpcKernelConfig {
    /// Machine timing model.
    pub machine: MachineConfig,
    /// Engine feature configuration.
    pub engine: XpcEngineConfig,
}

impl Default for XpcKernelConfig {
    fn default() -> Self {
        XpcKernelConfig {
            machine: MachineConfig::rocket_u500(),
            engine: XpcEngineConfig::paper_default(),
        }
    }
}

/// The kernel: machine + control-plane state. See the module docs.
///
/// # Example
///
/// Register an x-entry in one process and call it from another (compare
/// the paper's Listing 1):
///
/// ```
/// use rv64::{reg, Assembler};
/// use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
/// use xpc::layout::USER_CODE_VA;
/// use xpc_engine::XpcAsm;
///
/// # fn main() -> Result<(), xpc::XpcError> {
/// let mut k = XpcKernel::boot(XpcKernelConfig::default());
/// let server_proc = k.create_process()?;
/// let server = k.create_thread(server_proc)?;
/// let mut h = Assembler::new(USER_CODE_VA);
/// h.addi(reg::A0, reg::A0, 1); // handler: a0 += 1
/// h.ret();
/// let handler = k.load_code(server_proc, &h.assemble())?;
/// let entry = k.register_entry(server, server, handler, 1)?;
///
/// let client_proc = k.create_process()?;
/// let client = k.create_thread(client_proc)?;
/// k.grant_xcall(server, client, entry)?;
/// let mut c = Assembler::new(USER_CODE_VA);
/// c.li(reg::T6, entry.0 as i64);
/// c.xcall(reg::T6);
/// c.li(reg::A7, syscall::EXIT as i64);
/// c.ecall();
/// let main = k.load_code(client_proc, &c.assemble())?;
/// k.enter_thread(client, main, &[41])?;
/// assert_eq!(k.run(1_000_000)?, KernelEvent::ThreadExit(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct XpcKernel {
    /// The emulated machine (public for measurement: cycles, caches...).
    pub machine: Machine,
    alloc: FrameAlloc,
    processes: Vec<Process>,
    threads: Vec<Thread>,
    entries: Vec<Option<EntryInfo>>,
    /// Relay segment registry (public for invariant checks in tests).
    pub segs: SegRegistry,
    current: Option<ThreadId>,
    next_asid: u16,
    hardening: KernelHardening,
}

impl XpcKernel {
    /// Boot: install the engine, the M-mode trap stub and the global
    /// x-entry table.
    pub fn boot(cfg: XpcKernelConfig) -> Self {
        let mut machine =
            Machine::with_extension(cfg.machine.clone(), Box::new(XpcEngine::new(cfg.engine)));
        // M-mode stub: a single ebreak; every trap surfaces to the host.
        machine.load_program_at(KSTUB_PA, &[0x0010_0073]);
        machine.core.cpu.csr.mtvec = KSTUB_PA;
        let dram_len = machine.core.cfg.dram_size as u64;
        let alloc = FrameAlloc::new(PALLOC_BASE, DRAM_BASE + dram_len - PALLOC_BASE);
        let mut kernel = XpcKernel {
            machine,
            alloc,
            processes: Vec::new(),
            threads: Vec::new(),
            entries: {
                // Entry 0 stays reserved: the engine-cache prefetch
                // encoding (negative ID in xcall) cannot express it.
                let mut v: Vec<Option<EntryInfo>> = vec![None; XENTRY_TABLE_ENTRIES as usize];
                v[0] = Some(EntryInfo {
                    owner_process: ProcessId(u64::MAX),
                    handler_va: 0,
                    trampoline_va: 0,
                    max_contexts: 0,
                    credit_table_pa: None,
                    credit_slots: Vec::new(),
                    epoch: 0,
                });
                v
            },
            segs: SegRegistry::new(),
            current: None,
            next_asid: 1,
            hardening: KernelHardening::NONE,
        };
        // Zero the x-entry table and point the engine at it; the base is
        // colored off the page boundary (see create_thread on coloring).
        let table_pa = XENTRY_TABLE_PA + 192;
        for i in 0..XENTRY_TABLE_ENTRIES {
            let e = XEntry {
                page_table: 0,
                cap_ptr: 0,
                entry_pc: 0,
                valid: false,
            };
            e.store(&mut kernel.machine.core, table_pa, i)
                .expect("table in DRAM");
        }
        kernel.machine.core.cycles = 0; // boot-time writes are not charged
        kernel.machine.core.dcache.flush();
        {
            let (_, ext) = kernel.machine.split();
            let eng = ext
                .as_any_mut()
                .downcast_mut::<XpcEngine>()
                .expect("xpc engine installed");
            eng.regs.x_entry_table = table_pa;
            eng.regs.x_entry_table_size = XENTRY_TABLE_ENTRIES;
        }
        kernel
    }

    /// Typed access to the engine.
    pub fn engine(&mut self) -> &mut XpcEngine {
        self.machine
            .extension()
            .as_any_mut()
            .downcast_mut::<XpcEngine>()
            .expect("xpc engine installed")
    }

    fn engine_and_core(&mut self) -> (&mut Core, &mut XpcEngine) {
        let (core, ext) = self.machine.split();
        let eng = ext
            .as_any_mut()
            .downcast_mut::<XpcEngine>()
            .expect("xpc engine installed");
        (core, eng)
    }

    // ---- processes & threads -------------------------------------------

    /// Create a process: fresh address space, stack pages, seg-list page.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn create_process(&mut self) -> Result<ProcessId, XpcError> {
        let asid = self.next_asid;
        self.next_asid += 1;
        let mem = &mut self.machine.core.mem;
        let mut space = AddressSpace::new(mem, &mut self.alloc, asid)?;
        space.map_fresh(
            mem,
            &mut self.alloc,
            USER_STACK_TOP - USER_STACK_PAGES * FRAME_BYTES,
            USER_STACK_PAGES,
            PagePerms::UserData,
        )?;
        let seg_list_pa = self.alloc.alloc()?;
        crate::pagetable::zero_frame(mem, seg_list_pa);
        self.processes.push(Process {
            space,
            seg_list_pa,
            code_cursor: USER_CODE_VA,
            data_cursor: USER_DATA_VA,
            alive: true,
            tenant: 0,
        });
        Ok(ProcessId(self.processes.len() as u64 - 1))
    }

    fn process(&self, pid: ProcessId) -> Result<&Process, XpcError> {
        self.processes
            .get(pid.0 as usize)
            .ok_or(XpcError::NoSuchProcess(pid.0))
    }

    fn process_mut(&mut self, pid: ProcessId) -> Result<&mut Process, XpcError> {
        self.processes
            .get_mut(pid.0 as usize)
            .ok_or(XpcError::NoSuchProcess(pid.0))
    }

    /// The raw `satp` of a process.
    ///
    /// # Errors
    ///
    /// Unknown process.
    pub fn process_satp(&self, pid: ProcessId) -> Result<u64, XpcError> {
        Ok(self.process(pid)?.space.satp_raw())
    }

    /// Load `words` as code into `pid`'s next code slot; returns its VA.
    ///
    /// # Errors
    ///
    /// Out-of-memory or unknown process.
    pub fn load_code(&mut self, pid: ProcessId, words: &[u32]) -> Result<u64, XpcError> {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let pages = (bytes.len() as u64).div_ceil(FRAME_BYTES).max(1);
        let va = {
            let proc = self.process(pid)?;
            proc.code_cursor
        };
        let pa = {
            let (mem, alloc) = (&mut self.machine.core.mem, &mut self.alloc);
            let proc = self
                .processes
                .get_mut(pid.0 as usize)
                .ok_or(XpcError::NoSuchProcess(pid.0))?;
            let pa = proc
                .space
                .map_fresh(mem, alloc, va, pages, PagePerms::UserCode)?;
            proc.code_cursor += pages * FRAME_BYTES;
            pa
        };
        self.machine.core.mem.load_bytes(pa, &bytes);
        Ok(va)
    }

    /// Map `pages` fresh data pages into `pid`; returns `(va, pa)`.
    ///
    /// # Errors
    ///
    /// Out-of-memory or unknown process.
    pub fn alloc_data(&mut self, pid: ProcessId, pages: u64) -> Result<(u64, u64), XpcError> {
        let (mem, alloc) = (&mut self.machine.core.mem, &mut self.alloc);
        let proc = self
            .processes
            .get_mut(pid.0 as usize)
            .ok_or(XpcError::NoSuchProcess(pid.0))?;
        let va = proc.data_cursor;
        let pa = proc
            .space
            .map_fresh(mem, alloc, va, pages, PagePerms::UserData)?;
        proc.data_cursor += pages * FRAME_BYTES;
        Ok((va, pa))
    }

    /// Create a thread in `pid` with fresh capability bitmap + link stack.
    ///
    /// The small per-thread objects are *cache-colored*: the L1 D-cache is
    /// virtually indexed with a 4 KiB way, so page-aligned hot structures
    /// would all land in cache set 0 and thrash; a real kernel allocator
    /// staggers them, and so do we.
    ///
    /// # Errors
    ///
    /// Out-of-memory or unknown process.
    pub fn create_thread(&mut self, pid: ProcessId) -> Result<ThreadId, XpcError> {
        let satp = self.process(pid)?.space.satp_raw();
        let seg_list_pa = self.process(pid)?.seg_list_pa;
        let tid = self.threads.len() as u64;
        let cap_frame = self.alloc.alloc()?;
        crate::pagetable::zero_frame(&mut self.machine.core.mem, cap_frame);
        let cap_pa = cap_frame + ((tid * 5 + 3) % 13) * 256;
        debug_assert!(cap_pa + CAP_BITMAP_BYTES <= cap_frame + FRAME_BYTES);
        // One extra frame leaves room for the coloring offset.
        let link_frames = LINK_STACK_BYTES / FRAME_BYTES + 1;
        let link_frame = self.alloc.alloc_contig(link_frames)?;
        for i in 0..link_frames {
            crate::pagetable::zero_frame(&mut self.machine.core.mem, link_frame + i * FRAME_BYTES);
        }
        let link_pa = link_frame + ((tid * 3 + 1) % 8) * 448;
        let kstack = self.alloc.alloc()?;
        self.threads.push(Thread {
            process: pid,
            sched: SchedState::new(kstack),
            runtime: RuntimeState::new(cap_pa, link_pa, seg_list_pa, satp),
            grant_caps: Vec::new(),
        });
        Ok(ThreadId(self.threads.len() as u64 - 1))
    }

    fn thread(&self, tid: ThreadId) -> Result<&Thread, XpcError> {
        self.threads
            .get(tid.0 as usize)
            .ok_or(XpcError::NoSuchThread(tid.0))
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Result<&mut Thread, XpcError> {
        self.threads
            .get_mut(tid.0 as usize)
            .ok_or(XpcError::NoSuchThread(tid.0))
    }

    /// The process a thread belongs to.
    ///
    /// # Errors
    ///
    /// Unknown thread.
    pub fn thread_process(&self, tid: ThreadId) -> Result<ProcessId, XpcError> {
        Ok(self.thread(tid)?.process)
    }

    // ---- x-entries & capabilities --------------------------------------

    /// Register an x-entry (Listing 1's `xpc_register_entry`): installs the
    /// library trampoline with `max_contexts` C-stacks in front of
    /// `handler_va` and grants the registering `owner` thread the
    /// grant-cap.
    ///
    /// # Errors
    ///
    /// Table full / out-of-memory / unknown ids.
    pub fn register_entry(
        &mut self,
        owner: ThreadId,
        handler_thread: ThreadId,
        handler_va: u64,
        max_contexts: u64,
    ) -> Result<XEntryId, XpcError> {
        self.register_entry_impl(owner, handler_thread, handler_va, max_contexts, false)
    }

    /// Like [`XpcKernel::register_entry`], but the trampoline enforces the
    /// §6.1 credit system: callers must be funded with
    /// [`XpcKernel::grant_xcall_with_credits`] and each invocation charges
    /// one credit; at zero the call fails fast with
    /// [`crate::trampoline::ERR_NO_CREDIT`].
    ///
    /// # Errors
    ///
    /// Table full / out-of-memory / unknown ids.
    pub fn register_entry_with_credits(
        &mut self,
        owner: ThreadId,
        handler_thread: ThreadId,
        handler_va: u64,
        max_contexts: u64,
    ) -> Result<XEntryId, XpcError> {
        self.register_entry_impl(owner, handler_thread, handler_va, max_contexts, true)
    }

    fn register_entry_impl(
        &mut self,
        owner: ThreadId,
        handler_thread: ThreadId,
        handler_va: u64,
        max_contexts: u64,
        credits: bool,
    ) -> Result<XEntryId, XpcError> {
        let pid = self.thread(owner)?.process;
        let handler_cap = self.thread(handler_thread)?.runtime.cap_bitmap_pa;
        let id = self
            .entries
            .iter()
            .position(|e| e.is_none())
            .ok_or(XpcError::TableFull)? as u64;

        // Context flags page + C-stacks, in the owner process's space.
        let flag_pages = (max_contexts * 8).div_ceil(FRAME_BYTES).max(1);
        let (flags_va, _) = self.alloc_data(pid, flag_pages)?;
        let stack_pages = max_contexts * C_STACK_BYTES.div_ceil(FRAME_BYTES);
        let (cstacks_va, _) = self.alloc_data(pid, stack_pages)?;
        let (credit_table_va, credit_table_pa) = if credits {
            let pages = (crate::trampoline::CREDIT_SLOTS * 8).div_ceil(FRAME_BYTES);
            let (va, pa) = self.alloc_data(pid, pages)?;
            (Some(va), Some(pa))
        } else {
            (None, None)
        };

        // Trampoline code.
        let tramp_base = self.process(pid)?.code_cursor;
        let mut a = Assembler::new(tramp_base);
        emit_callee_trampoline(
            &mut a,
            &TrampolineSpec {
                flags_va,
                cstacks_va,
                c_stack_bytes: C_STACK_BYTES,
                max_contexts,
                handler_va,
                credit_table_va,
            },
        );
        let trampoline_va = self.load_code(pid, &a.assemble())?;
        debug_assert_eq!(trampoline_va, tramp_base);

        // Hardware entry.
        let satp = self.process(pid)?.space.satp_raw();
        let entry = XEntry {
            page_table: satp,
            cap_ptr: handler_cap,
            entry_pc: trampoline_va,
            valid: true,
        };
        let table_pa = self.engine().regs.x_entry_table;
        entry
            .store(&mut self.machine.core, table_pa, id)
            .expect("table in DRAM");
        self.engine().invalidate_cache();

        self.entries[id as usize] = Some(EntryInfo {
            owner_process: pid,
            handler_va,
            trampoline_va,
            max_contexts,
            credit_table_pa,
            credit_slots: Vec::new(),
            epoch: 0,
        });
        self.thread_mut(owner)?.grant_caps.push(id);
        Ok(XEntryId(id))
    }

    /// Register a *raw* x-entry with no trampoline (used by benches that
    /// measure the bare hardware path).
    ///
    /// # Errors
    ///
    /// Table full / unknown ids.
    pub fn register_raw_entry(
        &mut self,
        owner: ThreadId,
        handler_thread: ThreadId,
        entry_pc: u64,
    ) -> Result<XEntryId, XpcError> {
        let pid = self.thread(owner)?.process;
        let handler_cap = self.thread(handler_thread)?.runtime.cap_bitmap_pa;
        let id = self
            .entries
            .iter()
            .position(|e| e.is_none())
            .ok_or(XpcError::TableFull)? as u64;
        let satp = self.process(pid)?.space.satp_raw();
        let entry = XEntry {
            page_table: satp,
            cap_ptr: handler_cap,
            entry_pc,
            valid: true,
        };
        let table_pa = self.engine().regs.x_entry_table;
        entry
            .store(&mut self.machine.core, table_pa, id)
            .expect("table in DRAM");
        self.engine().invalidate_cache();
        self.entries[id as usize] = Some(EntryInfo {
            owner_process: pid,
            handler_va: entry_pc,
            trampoline_va: entry_pc,
            max_contexts: 1,
            credit_table_pa: None,
            credit_slots: Vec::new(),
            epoch: 0,
        });
        self.thread_mut(owner)?.grant_caps.push(id);
        Ok(XEntryId(id))
    }

    /// Grant `grantee` the xcall capability for `entry`. The granter must
    /// hold the grant-cap (§4.2). With
    /// [`KernelHardening::flow_tags`] enabled the grant is additionally
    /// refused when granter and grantee live in different tenants — the
    /// runtime twin of the static tenant-flow rule.
    ///
    /// # Errors
    ///
    /// Missing grant-cap, cross-tenant grant under flow tags, or
    /// unknown ids.
    pub fn grant_xcall(
        &mut self,
        granter: ThreadId,
        grantee: ThreadId,
        entry: XEntryId,
    ) -> Result<(), XpcError> {
        if !self.thread(granter)?.grant_caps.contains(&entry.0) {
            return Err(XpcError::NoGrantCap {
                thread: granter.0,
                entry: entry.0,
            });
        }
        if self.hardening.flow_tags {
            let granter_tenant = self.process(self.thread(granter)?.process)?.tenant;
            let grantee_tenant = self.process(self.thread(grantee)?.process)?.tenant;
            if granter_tenant != grantee_tenant {
                return Err(XpcError::CrossTenantGrant {
                    granter_tenant,
                    grantee_tenant,
                    entry: entry.0,
                });
            }
        }
        let cap_pa = self.thread(grantee)?.runtime.cap_bitmap_pa;
        debug_assert!(entry.0 / 8 < CAP_BITMAP_BYTES);
        let byte_pa = cap_pa + entry.0 / 8;
        let old = self
            .machine
            .core
            .mem
            .read(byte_pa, 1)
            .expect("bitmap in DRAM");
        self.machine
            .core
            .mem
            .write(byte_pa, 1, old | (1 << (entry.0 % 8)))
            .expect("bitmap in DRAM");
        Ok(())
    }

    /// Pass the grant-cap itself to another thread (§4.2: a thread may
    /// grant either xcall or grant capabilities onward).
    ///
    /// # Errors
    ///
    /// Missing grant-cap or unknown ids.
    pub fn grant_grant(
        &mut self,
        granter: ThreadId,
        grantee: ThreadId,
        entry: XEntryId,
    ) -> Result<(), XpcError> {
        if !self.thread(granter)?.grant_caps.contains(&entry.0) {
            return Err(XpcError::NoGrantCap {
                thread: granter.0,
                entry: entry.0,
            });
        }
        let g = self.thread_mut(grantee)?;
        if !g.grant_caps.contains(&entry.0) {
            g.grant_caps.push(entry.0);
        }
        Ok(())
    }

    /// Grant the xcall capability *and* fund the caller with `credits`
    /// invocations of a credit-enforcing entry (§6.1).
    ///
    /// # Errors
    ///
    /// Missing grant-cap, unknown ids, entry without a credit table, or a
    /// credit-slot collision (two callers whose identities alias — the
    /// kernel refuses rather than letting one drain the other).
    pub fn grant_xcall_with_credits(
        &mut self,
        granter: ThreadId,
        grantee: ThreadId,
        entry: XEntryId,
        credits: u64,
    ) -> Result<(), XpcError> {
        self.grant_xcall(granter, grantee, entry)?;
        let cap_pa = self.thread(grantee)?.runtime.cap_bitmap_pa;
        let slot = crate::trampoline::credit_slot_for_cap(cap_pa);
        let info = self.entries[entry.0 as usize]
            .as_mut()
            .ok_or(XpcError::NoSuchEntry(entry.0))?;
        let table_pa = info.credit_table_pa.ok_or(XpcError::NoSuchEntry(entry.0))?;
        if info
            .credit_slots
            .iter()
            .any(|&(s, t)| s == slot && t != grantee.0)
        {
            // Credit-slot collision: two callers whose identities alias.
            return Err(XpcError::SegListFull);
        }
        if !info.credit_slots.contains(&(slot, grantee.0)) {
            info.credit_slots.push((slot, grantee.0));
        }
        self.machine
            .core
            .mem
            .write(table_pa + slot * 8, 8, credits)
            .expect("credit table in DRAM");
        Ok(())
    }

    /// Refill a caller's credits for `entry` (the server-side policy of
    /// §6.1 deciding to keep serving a client).
    ///
    /// # Errors
    ///
    /// Unknown ids or entry without credits.
    pub fn refill_credits(
        &mut self,
        entry: XEntryId,
        thread: ThreadId,
        credits: u64,
    ) -> Result<(), XpcError> {
        let table_pa = self.credit_table(entry)?;
        let cap_pa = self.thread(thread)?.runtime.cap_bitmap_pa;
        let slot = crate::trampoline::credit_slot_for_cap(cap_pa);
        self.machine
            .core
            .mem
            .write(table_pa + slot * 8, 8, credits)
            .expect("credit table in DRAM");
        Ok(())
    }

    /// Remaining credits of `thread` at `entry`.
    ///
    /// # Errors
    ///
    /// Unknown ids or entry without credits.
    pub fn credits_of(&mut self, entry: XEntryId, thread: ThreadId) -> Result<u64, XpcError> {
        let table_pa = self.credit_table(entry)?;
        let cap_pa = self.thread(thread)?.runtime.cap_bitmap_pa;
        let slot = crate::trampoline::credit_slot_for_cap(cap_pa);
        Ok(self
            .machine
            .core
            .mem
            .read(table_pa + slot * 8, 8)
            .expect("credit table in DRAM"))
    }

    fn credit_table(&self, entry: XEntryId) -> Result<u64, XpcError> {
        self.entries
            .get(entry.0 as usize)
            .and_then(|e| e.as_ref())
            .and_then(|e| e.credit_table_pa)
            .ok_or(XpcError::NoSuchEntry(entry.0))
    }

    /// Revoke `thread`'s xcall capability for `entry`.
    ///
    /// # Errors
    ///
    /// Unknown ids.
    pub fn revoke_xcall(&mut self, thread: ThreadId, entry: XEntryId) -> Result<(), XpcError> {
        let cap_pa = self.thread(thread)?.runtime.cap_bitmap_pa;
        let byte_pa = cap_pa + entry.0 / 8;
        let old = self
            .machine
            .core
            .mem
            .read(byte_pa, 1)
            .expect("bitmap in DRAM");
        self.machine
            .core
            .mem
            .write(byte_pa, 1, old & !(1 << (entry.0 % 8)))
            .expect("bitmap in DRAM");
        Ok(())
    }

    // ---- hardening (runtime twins of the xpc-verify temporal rules) ----

    /// Switch the hardening mitigations on or off.
    pub fn set_hardening(&mut self, h: KernelHardening) {
        self.hardening = h;
    }

    /// The current hardening configuration.
    pub fn hardening(&self) -> KernelHardening {
        self.hardening
    }

    /// Label `pid` with a tenant for the flow-tag mitigation. Processes
    /// default to tenant 0.
    ///
    /// # Errors
    ///
    /// Unknown process.
    pub fn set_tenant(&mut self, pid: ProcessId, tenant: u64) -> Result<(), XpcError> {
        self.process_mut(pid)?.tenant = tenant;
        Ok(())
    }

    /// The tenant label of a process.
    ///
    /// # Errors
    ///
    /// Unknown process.
    pub fn process_tenant(&self, pid: ProcessId) -> Result<u64, XpcError> {
        Ok(self.process(pid)?.tenant)
    }

    /// Revoke `entry` from **every** thread and open a new revocation
    /// epoch: with [`KernelHardening::revocation_epochs`] the epoch
    /// counter bumps (so [`XpcKernel::entry_epoch`] dates outstanding
    /// grants), and in either case the cap bit is cleared from every
    /// bitmap — a later `xcall` through a pre-revocation grant traps
    /// `InvalidXcallCap`.
    ///
    /// # Errors
    ///
    /// Unknown entry.
    pub fn revoke_entry(&mut self, entry: XEntryId) -> Result<(), XpcError> {
        self.entries
            .get(entry.0 as usize)
            .and_then(|e| e.as_ref())
            .ok_or(XpcError::NoSuchEntry(entry.0))?;
        for tid in 0..self.threads.len() as u64 {
            self.revoke_xcall(ThreadId(tid), entry)?;
        }
        if self.hardening.revocation_epochs {
            if let Some(Some(info)) = self.entries.get_mut(entry.0 as usize) {
                info.epoch += 1;
            }
        }
        Ok(())
    }

    /// The revocation epoch of an entry (0 until the first
    /// epoch-enabled [`XpcKernel::revoke_entry`]).
    ///
    /// # Errors
    ///
    /// Unknown entry.
    pub fn entry_epoch(&self, entry: XEntryId) -> Result<u64, XpcError> {
        self.entries
            .get(entry.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.epoch)
            .ok_or(XpcError::NoSuchEntry(entry.0))
    }

    // ---- relay segments -------------------------------------------------

    /// Allocate a relay segment of `len` bytes owned by `owner`
    /// (Listing 1's `alloc_relay_mem`).
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn alloc_relay_seg(&mut self, owner: ThreadId, len: u64) -> Result<SegHandle, XpcError> {
        self.thread(owner)?;
        let h = self.segs.alloc(&mut self.alloc, len, owner.0, true)?;
        debug_assert!(self.segs.check_invariants().is_ok());
        Ok(h)
    }

    /// Allocate a §6.2 *relay-page-table* segment of `pages` pages with
    /// scattered backing frames, owned by `owner`. Unlike
    /// [`XpcKernel::alloc_relay_seg`] the memory need not be physically
    /// contiguous — the fragmentation concern of §6.1 — at the cost of
    /// one extra walk access per translation and page-granular masks.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn alloc_relay_pt_seg(
        &mut self,
        owner: ThreadId,
        pages: u64,
    ) -> Result<SegHandle, XpcError> {
        self.thread(owner)?;
        let (h, table_pa, frames) = self
            .segs
            .alloc_paged(&mut self.alloc, pages, owner.0, true)?;
        crate::pagetable::zero_frame(&mut self.machine.core.mem, table_pa);
        for (i, f) in frames.iter().enumerate() {
            crate::pagetable::zero_frame(&mut self.machine.core.mem, *f);
            self.machine
                .core
                .mem
                .write(table_pa + 8 * i as u64, 8, f >> 12)
                .expect("relay page table in DRAM");
        }
        debug_assert!(self.segs.check_invariants().is_ok());
        Ok(h)
    }

    /// Free a relay segment, returning its frames to the allocator (the
    /// single-owner rule means the caller must currently own it).
    ///
    /// # Errors
    ///
    /// Ownership violation.
    pub fn free_relay_seg(&mut self, owner: ThreadId, h: SegHandle) -> Result<(), XpcError> {
        match self.segs.owner(h) {
            SegOwner::Thread(t) if t == owner.0 => {}
            other => {
                return Err(XpcError::SegNotOwned {
                    seg: h.0,
                    owner: match other {
                        SegOwner::Thread(t) => Some(t),
                        _ => None,
                    },
                })
            }
        }
        // Paged segments: return the data frames first (read the table).
        let seg = self.segs.seg_reg(h);
        if seg.paged {
            for i in 0..seg.len / FRAME_BYTES {
                let ppn = self
                    .machine
                    .core
                    .mem
                    .read(seg.pa_base + 8 * i, 8)
                    .expect("relay page table in DRAM");
                if ppn != 0 {
                    self.alloc.free(ppn << 12);
                }
            }
        }
        self.segs.free(&mut self.alloc, h);
        Ok(())
    }

    /// Resolve a byte offset inside segment `h` to a physical address
    /// (host-side; follows the relay page table for paged segments).
    fn seg_offset_pa(&mut self, h: SegHandle, offset: u64) -> u64 {
        let seg = self.segs.seg_reg(h);
        assert!(offset < seg.len, "offset escapes segment");
        if !seg.paged {
            return seg.pa_base + offset;
        }
        let slot = seg.pa_base + (offset >> 12) * 8;
        let ppn = self.machine.core.mem.read(slot, 8).expect("table in DRAM");
        (ppn << 12) | (offset & 0xfff)
    }

    /// Make `h` the live seg-reg of `thread` (must be the owner).
    ///
    /// # Errors
    ///
    /// Ownership violation or unknown thread.
    pub fn install_seg(&mut self, thread: ThreadId, h: SegHandle) -> Result<(), XpcError> {
        match self.segs.owner(h) {
            SegOwner::Thread(t) if t == thread.0 => {}
            other => {
                return Err(XpcError::SegNotOwned {
                    seg: h.0,
                    owner: match other {
                        SegOwner::Thread(t) => Some(t),
                        _ => None,
                    },
                })
            }
        }
        let seg = self.segs.seg_reg(h);
        if self.current == Some(thread) {
            let (core, eng) = self.engine_and_core();
            eng.regs.seg = seg;
            eng.regs.mask = SegMask::none();
            eng.sync_seg_window(core);
        } else {
            let rt = &mut self.thread_mut(thread)?.runtime;
            rt.seg = seg;
            rt.mask = SegMask::none();
        }
        Ok(())
    }

    /// Hand the relay segment `h` — currently live in `from`'s seg-reg —
    /// over to `to`: registry ownership and the (possibly shrunk) mask
    /// window move together, exactly like the engine's handover
    /// transition along a calling chain (§4.4: the window never widens
    /// across the transfer). With [`KernelHardening::zero_on_handover`]
    /// enabled and a **cross-process** handover, every byte of the
    /// segment *outside* the masked window is zeroed first — the residue
    /// a previous holder left behind is exactly what the static taint
    /// automaton flags as a leak. Returns the number of bytes scrubbed
    /// (0 when the mitigation is off, the handover stays in-process, or
    /// the mask covers the whole segment).
    ///
    /// # Errors
    ///
    /// Ownership violation (including a segment the sender owns but has
    /// not installed in its seg-reg) or unknown thread.
    pub fn handover_seg(
        &mut self,
        from: ThreadId,
        to: ThreadId,
        h: SegHandle,
    ) -> Result<u64, XpcError> {
        match self.segs.owner(h) {
            SegOwner::Thread(t) if t == from.0 => {}
            other => {
                return Err(XpcError::SegNotOwned {
                    seg: h.0,
                    owner: match other {
                        SegOwner::Thread(t) => Some(t),
                        _ => None,
                    },
                })
            }
        }
        let from_pid = self.thread(from)?.process;
        let to_pid = self.thread(to)?.process;
        self.save_current();
        let (seg, mask) = {
            let rt = &self.thread(from)?.runtime;
            (rt.seg, rt.mask)
        };
        if seg != self.segs.seg_reg(h) {
            return Err(XpcError::SegNotOwned {
                seg: h.0,
                owner: Some(from.0),
            });
        }
        let mut scrubbed = 0u64;
        if self.hardening.zero_on_handover && from_pid != to_pid {
            // The receiver's view is the masked window; everything
            // outside it is residue from earlier holders. An unset mask
            // means the whole segment is the message — nothing to scrub.
            let (win_start, win_end) = if mask.is_set() {
                let s = mask.va_base.saturating_sub(seg.va_base).min(seg.len);
                let e = (mask.va_base + mask.len)
                    .saturating_sub(seg.va_base)
                    .min(seg.len);
                (s, e.max(s))
            } else {
                (0, seg.len)
            };
            scrubbed = win_start + (seg.len - win_end);
            if win_start > 0 {
                self.zero_seg_range(h, 0, win_start)?;
            }
            if win_end < seg.len {
                self.zero_seg_range(h, win_end, seg.len - win_end)?;
            }
        }
        {
            let rt = &mut self.thread_mut(from)?.runtime;
            rt.seg = SegReg::invalid();
            rt.mask = SegMask::none();
        }
        {
            // Same transition the engine applies on `xcall`: the
            // receiver's segment *is* the masked window (so any later
            // mask write that would widen past it traps), mask cleared.
            let rt = &mut self.thread_mut(to)?.runtime;
            rt.seg = seg.masked(mask);
            rt.mask = SegMask::none();
        }
        self.segs.transfer(h, SegOwner::Thread(to.0))?;
        debug_assert!(self.segs.check_invariants().is_ok());
        // Either end may be the running thread: push the moved window
        // into the live engine registers.
        if let Some(cur) = self.current.filter(|&c| c == from || c == to) {
            let rt = self.thread(cur)?.runtime;
            let (core, eng) = self.engine_and_core();
            eng.regs.seg = rt.seg;
            eng.regs.mask = rt.mask;
            eng.sync_seg_window(core);
        }
        Ok(scrubbed)
    }

    /// Zero `[offset, offset + len)` of segment `h`, page-sized chunks.
    fn zero_seg_range(&mut self, h: SegHandle, offset: u64, len: u64) -> Result<(), XpcError> {
        const ZEROS: [u8; 4096] = [0; 4096];
        let mut pos = 0u64;
        while pos < len {
            let take = usize::try_from((len - pos).min(4096)).expect("chunk fits usize");
            self.write_seg(h, offset + pos, &ZEROS[..take])?;
            pos += take as u64;
        }
        Ok(())
    }

    /// Stash `h` into `pid`'s seg-list at `slot` (for `swapseg`).
    ///
    /// # Errors
    ///
    /// Bad slot, ownership violation, unknown ids.
    pub fn stash_seg(&mut self, pid: ProcessId, slot: u64, h: SegHandle) -> Result<(), XpcError> {
        if slot >= SEG_LIST_SLOTS {
            return Err(XpcError::SegListFull);
        }
        let list_pa = self.process(pid)?.seg_list_pa;
        let seg = self.segs.seg_reg(h);
        SegDescriptor { seg, valid: true }
            .store(&mut self.machine.core, list_pa, slot)
            .expect("seg list in DRAM");
        self.segs.transfer(h, SegOwner::ListSlot(pid.0, slot))?;
        Ok(())
    }

    /// Write guest-visible bytes into a segment (host-side convenience;
    /// handles both contiguous and paged segments).
    ///
    /// # Errors
    ///
    /// [`XpcError::SegOutOfBounds`] when the range escapes the segment —
    /// including `offset + len` values that would wrap 64-bit arithmetic
    /// (the sum is checked, so a huge `offset` cannot sneak past the
    /// bound by overflowing).
    pub fn write_seg(&mut self, h: SegHandle, offset: u64, bytes: &[u8]) -> Result<(), XpcError> {
        let seg = self.segs.seg_reg(h);
        let in_bounds = offset
            .checked_add(bytes.len() as u64)
            .is_some_and(|end| end <= seg.len);
        if !in_bounds {
            return Err(XpcError::SegOutOfBounds {
                seg: h.0,
                offset,
                len: bytes.len() as u64,
            });
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            let off = offset + pos as u64;
            let in_page = (4096 - (off & 0xfff)) as usize;
            let take = in_page.min(bytes.len() - pos);
            let pa = self.seg_offset_pa(h, off);
            self.machine
                .core
                .mem
                .load_bytes(pa, &bytes[pos..pos + take]);
            pos += take;
        }
        Ok(())
    }

    /// Read bytes back out of a segment (host-side convenience; handles
    /// both contiguous and paged segments).
    ///
    /// # Errors
    ///
    /// [`XpcError::SegOutOfBounds`] when the range escapes the segment
    /// (checked addition — a wrapping `offset + len` cannot bypass it).
    pub fn read_seg(&mut self, h: SegHandle, offset: u64, len: usize) -> Result<Vec<u8>, XpcError> {
        let seg = self.segs.seg_reg(h);
        let in_bounds = offset
            .checked_add(len as u64)
            .is_some_and(|end| end <= seg.len);
        if !in_bounds {
            return Err(XpcError::SegOutOfBounds {
                seg: h.0,
                offset,
                len: len as u64,
            });
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = 0usize;
        while pos < len {
            let off = offset + pos as u64;
            let in_page = (4096 - (off & 0xfff)) as usize;
            let take = in_page.min(len - pos);
            let pa = self.seg_offset_pa(h, off);
            out.extend(self.machine.core.mem.read_bytes(pa, take));
            pos += take;
        }
        Ok(out)
    }

    // ---- running ---------------------------------------------------------

    /// Save the engine per-thread registers into `current`'s runtime state.
    fn save_current(&mut self) {
        if let Some(cur) = self.current {
            let (core, eng) = self.engine_and_core();
            let regs = eng.regs;
            let pc = core.cpu.pc;
            let sp = core.cpu.x(reg::SP);
            let satp = core.cpu.csr.satp;
            let mut gprs = [0u64; 32];
            for (i, g) in gprs.iter_mut().enumerate() {
                *g = core.cpu.x(i as u8);
            }
            let rt = &mut self.threads[cur.0 as usize].runtime;
            rt.gprs = gprs;
            rt.cap_bitmap_pa = regs.xcall_cap;
            rt.link_stack_pa = regs.link;
            rt.link_sp = regs.link_sp;
            rt.seg = regs.seg;
            rt.mask = regs.mask;
            rt.seg_list_pa = regs.seg_list;
            rt.satp = satp;
            rt.pc = pc;
            rt.sp = sp;
        }
    }

    /// Context-switch to `tid` and start it at `pc_va` with `args` in
    /// `a0..`. Saves the engine per-thread registers of the previous
    /// thread first (§4.1's context-switch rule).
    ///
    /// # Errors
    ///
    /// Unknown thread.
    pub fn enter_thread(
        &mut self,
        tid: ThreadId,
        pc_va: u64,
        args: &[u64],
    ) -> Result<(), XpcError> {
        self.save_current();
        let rt = self.thread(tid)?.runtime;
        let (core, eng) = self.engine_and_core();
        eng.regs.xcall_cap = rt.cap_bitmap_pa;
        eng.regs.link = rt.link_stack_pa;
        eng.regs.link_sp = rt.link_sp;
        eng.regs.seg = rt.seg;
        eng.regs.mask = rt.mask;
        eng.regs.seg_list = rt.seg_list_pa;
        eng.regs.seg_list_size = SEG_LIST_SLOTS;
        eng.sync_seg_window(core);
        core.cpu.csr.satp = rt.satp;
        if !core.mmu.tlb.tagged() {
            core.mmu.tlb.flush_all();
        }
        core.cpu.mode = Mode::User;
        core.cpu.pc = pc_va;
        core.cpu.set_x(reg::SP, USER_STACK_TOP - 16);
        for (i, v) in args.iter().enumerate().take(8) {
            core.cpu.set_x(reg::A0 + i as u8, *v);
        }
        self.current = Some(tid);
        Ok(())
    }

    /// Resume a previously preempted (or descheduled) thread exactly where
    /// it stopped: full register file, engine per-thread state, address
    /// space.
    ///
    /// # Errors
    ///
    /// Unknown thread.
    pub fn resume_thread(&mut self, tid: ThreadId) -> Result<(), XpcError> {
        self.save_current();
        let rt = self.thread(tid)?.runtime;
        let (core, eng) = self.engine_and_core();
        eng.regs.xcall_cap = rt.cap_bitmap_pa;
        eng.regs.link = rt.link_stack_pa;
        eng.regs.link_sp = rt.link_sp;
        eng.regs.seg = rt.seg;
        eng.regs.mask = rt.mask;
        eng.regs.seg_list = rt.seg_list_pa;
        eng.regs.seg_list_size = SEG_LIST_SLOTS;
        eng.sync_seg_window(core);
        core.cpu.csr.satp = rt.satp;
        if !core.mmu.tlb.tagged() {
            core.mmu.tlb.flush_all();
        }
        core.cpu.mode = Mode::User;
        core.cpu.pc = rt.pc;
        for (i, g) in rt.gprs.iter().enumerate() {
            core.cpu.set_x(i as u8, *g);
        }
        self.current = Some(tid);
        Ok(())
    }

    /// Arm the machine timer to fire `delta` cycles from now (preemptive
    /// scheduling tick). Pass 0 to disarm.
    pub fn set_timer(&mut self, delta: u64) {
        let core = &mut self.machine.core;
        core.cpu.csr.mtimecmp = if delta == 0 { 0 } else { core.cycles + delta };
        core.cpu.csr.mie |= rv64::machine::MTIE;
    }

    /// Run until a kernel-visible event, handling recoverable traps
    /// (syscalls, termination unwinding) internally.
    ///
    /// # Errors
    ///
    /// [`XpcError::GuestFault`] on unrecoverable simulator errors.
    pub fn run(&mut self, max_instr: u64) -> Result<KernelEvent, XpcError> {
        let mut budget = max_instr;
        loop {
            let r = self
                .machine
                .run(budget)
                .map_err(|e| XpcError::GuestFault(e.to_string()))?;
            let spent = r.instret;
            budget = budget.saturating_sub(spent.min(budget));
            match r.exit {
                Exit::LimitReached => return Ok(KernelEvent::Timeout),
                Exit::Exited(code) => return Ok(KernelEvent::ThreadExit(code)),
                Exit::Break => {
                    if self.machine.core.cpu.pc != KSTUB_PA {
                        return Ok(KernelEvent::Break);
                    }
                    // Trap bounced off the M-mode stub: dispatch.
                    match self.handle_trap()? {
                        Some(ev) => return Ok(ev),
                        None => {
                            if budget == 0 {
                                return Ok(KernelEvent::Timeout);
                            }
                            continue;
                        }
                    }
                }
            }
        }
    }

    /// Handle the trap recorded in the M-mode CSRs. `Ok(None)` means the
    /// kernel resolved it and execution should resume.
    fn handle_trap(&mut self) -> Result<Option<KernelEvent>, XpcError> {
        let (mcause, mtval, mepc) = {
            let c = &self.machine.core.cpu.csr;
            (c.mcause, c.mtval, c.mepc)
        };
        if mcause == rv64::machine::MCAUSE_TIMER {
            // Preemption tick: disarm, make the interrupted thread
            // resumable (PC back to the interrupted instruction) and let
            // the scheduler (the host caller) decide who runs next.
            self.machine.core.cpu.csr.mtimecmp = 0;
            self.machine.core.cpu.pc = mepc;
            self.machine.core.cpu.mode = Mode::User;
            return Ok(Some(KernelEvent::TimerFired));
        }
        let cause = Cause::from_code(mcause).unwrap_or(Cause::IllegalInst);
        match cause {
            Cause::EcallFromU => {
                let a7 = self.machine.core.cpu.x(reg::A7);
                let a0 = self.machine.core.cpu.x(reg::A0);
                match a7 {
                    syscall::EXIT => Ok(Some(KernelEvent::ThreadExit(a0))),
                    syscall::YIELD => {
                        self.resume_user(mepc + 4);
                        Ok(None)
                    }
                    _ => Ok(Some(KernelEvent::ThreadExit(a0))),
                }
            }
            // §4.2 Application Termination: an xret hit a dead linkage
            // record — unwind past the dead frames to the closest live
            // caller.
            Cause::InvalidLinkage => self.unwind_dead_chain(),
            // Execution faulted inside a zeroed (terminated) address
            // space: the *current* domain is dead, so return control to
            // its (live) caller directly.
            Cause::InstPageFault | Cause::LoadPageFault | Cause::StorePageFault
                if !self.satp_alive(self.machine.core.cpu.csr.satp) =>
            {
                if self.force_timeout_unwind()? {
                    Ok(None)
                } else {
                    Ok(Some(KernelEvent::Fault {
                        cause,
                        tval: mtval,
                        epc: mepc,
                    }))
                }
            }
            _ => Ok(Some(KernelEvent::Fault {
                cause,
                tval: mtval,
                epc: mepc,
            })),
        }
    }

    fn resume_user(&mut self, pc: u64) {
        let core = &mut self.machine.core;
        core.cpu.mode = Mode::User;
        core.cpu.pc = pc;
    }

    fn satp_alive(&self, satp: u64) -> bool {
        self.processes
            .iter()
            .any(|p| p.alive && p.space.satp_raw() == satp)
    }

    /// Pop linkage records until one belonging to a live process is found;
    /// restore it and deliver `ERR_TIMEOUT` in `a0` (§4.2's behaviour for
    /// chains whose middle died). Returns a Fault event if nothing on the
    /// stack is live.
    /// §6.1 timeout mechanism: forcibly return control to the most recent
    /// caller with [`ERR_TIMEOUT`] in `a0`, abandoning the running callee.
    /// The kernel (policy) decides *when*; this is the mechanism. Returns
    /// `false` when the current thread has no outstanding call to unwind.
    ///
    /// # Errors
    ///
    /// Guest faults while reading the link stack.
    pub fn force_timeout_unwind(&mut self) -> Result<bool, XpcError> {
        let (link, link_sp) = {
            let eng = self.engine();
            (eng.regs.link, eng.regs.link_sp)
        };
        if link_sp < LINK_RECORD_BYTES {
            return Ok(false);
        }
        let off = link_sp - LINK_RECORD_BYTES;
        let rec = LinkageRecord::load(&mut self.machine.core, link, off)
            .map_err(|t| XpcError::GuestFault(t.to_string()))?;
        if !rec.valid || !self.satp_alive(rec.satp) {
            // Dead frame: let the ordinary unwinder walk further.
            return match self.unwind_dead_chain()? {
                None => Ok(true),
                Some(_) => Ok(false),
            };
        }
        let (core, eng) = self.engine_and_core();
        eng.regs.link_sp = off;
        eng.regs.xcall_cap = rec.xcall_cap;
        eng.regs.seg_list = rec.seg_list;
        eng.regs.seg = rec.seg;
        eng.regs.mask = rec.mask;
        eng.sync_seg_window(core);
        core.cpu.csr.satp = rec.satp;
        if !core.mmu.tlb.tagged() {
            core.mmu.tlb.flush_all();
        }
        core.cpu.mode = Mode::User;
        core.cpu.pc = rec.ret_pc;
        core.cpu.set_x(reg::A0, ERR_TIMEOUT);
        Ok(true)
    }

    /// Pop linkage records until one belonging to a live process is
    /// found; restore it and deliver `ERR_TIMEOUT` (§4.2). If the *top*
    /// record is healthy the trap was not a termination (e.g. link-stack
    /// overflow on `xcall`): surface a Fault instead of corrupting a
    /// live chain.
    fn unwind_dead_chain(&mut self) -> Result<Option<KernelEvent>, XpcError> {
        {
            let (link, link_sp) = {
                let eng = self.engine();
                (eng.regs.link, eng.regs.link_sp)
            };
            if link_sp >= LINK_RECORD_BYTES {
                let off = link_sp - LINK_RECORD_BYTES;
                let rec = LinkageRecord::load(&mut self.machine.core, link, off)
                    .map_err(|t| XpcError::GuestFault(t.to_string()))?;
                if rec.valid && self.satp_alive(rec.satp) {
                    return Ok(Some(KernelEvent::Fault {
                        cause: Cause::InvalidLinkage,
                        tval: self.machine.core.cpu.csr.mtval,
                        epc: self.machine.core.cpu.csr.mepc,
                    }));
                }
            }
        }
        loop {
            let (link, link_sp) = {
                let eng = self.engine();
                (eng.regs.link, eng.regs.link_sp)
            };
            if link_sp < LINK_RECORD_BYTES {
                return Ok(Some(KernelEvent::Fault {
                    cause: Cause::InvalidLinkage,
                    tval: 0,
                    epc: self.machine.core.cpu.csr.mepc,
                }));
            }
            let off = link_sp - LINK_RECORD_BYTES;
            let rec = LinkageRecord::load(&mut self.machine.core, link, off)
                .map_err(|t| XpcError::GuestFault(t.to_string()))?;
            {
                let eng = self.engine();
                eng.regs.link_sp = off;
            }
            if rec.valid && self.satp_alive(rec.satp) {
                let (core, eng) = self.engine_and_core();
                eng.regs.xcall_cap = rec.xcall_cap;
                eng.regs.seg_list = rec.seg_list;
                eng.regs.seg = rec.seg;
                eng.regs.mask = rec.mask;
                eng.sync_seg_window(core);
                core.cpu.csr.satp = rec.satp;
                if !core.mmu.tlb.tagged() {
                    core.mmu.tlb.flush_all();
                }
                core.cpu.mode = Mode::User;
                core.cpu.pc = rec.ret_pc;
                core.cpu.set_x(reg::A0, ERR_TIMEOUT);
                return Ok(None);
            }
        }
    }

    // ---- termination (§4.2, §4.4) ---------------------------------------

    /// Terminate a process: invalidate its linkage records on every link
    /// stack, zero its top-level page table, revoke its segments.
    ///
    /// # Errors
    ///
    /// Unknown process.
    pub fn terminate_process(&mut self, pid: ProcessId) -> Result<(), XpcError> {
        let satp = self.process(pid)?.space.satp_raw();
        self.process_mut(pid)?.alive = false;

        // Make the engine view consistent before scanning.
        self.save_current();

        // Scan all link stacks and invalidate records pointing into the
        // dead process (compare by page-table pointer, as §4.2 does).
        let snapshots: Vec<(u64, u64)> = self
            .threads
            .iter()
            .map(|t| (t.runtime.link_stack_pa, t.runtime.link_sp))
            .collect();
        for (link, sp) in snapshots {
            let mut off = 0;
            while off + LINK_RECORD_BYTES <= sp {
                let rec = LinkageRecord::load(&mut self.machine.core, link, off)
                    .map_err(|t| XpcError::GuestFault(t.to_string()))?;
                if rec.satp == satp && rec.valid {
                    let invalid = LinkageRecord {
                        valid: false,
                        ..rec
                    };
                    invalid
                        .store(&mut self.machine.core, link, off, false)
                        .map_err(|t| XpcError::GuestFault(t.to_string()))?;
                }
                off += LINK_RECORD_BYTES;
            }
        }
        // The current thread's live engine registers were saved above and
        // its link stack scanned; if the current thread belongs to the
        // dead process the next trap unwinds it.

        // Zero the top-level page table (fast-path termination trick).
        let mem = &mut self.machine.core.mem;
        self.processes[pid.0 as usize].space.zero_root(mem);
        if !self.machine.core.mmu.tlb.tagged() {
            self.machine.core.mmu.tlb.flush_all();
        } else {
            let asid = self.processes[pid.0 as usize].space.asid();
            self.machine.core.mmu.tlb.flush_asid(asid);
        }

        // Segment revocation (§4.4): segments owned by the dead process's
        // threads or stashed in its seg-list go back to the allocator.
        let dead_threads: Vec<u64> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.process == pid)
            .map(|(i, _)| i as u64)
            .collect();
        let mut to_free = Vec::new();
        for t in dead_threads {
            to_free.extend(self.segs.owned_by_thread(t));
        }
        to_free.extend(self.segs.stashed_in_process(pid.0));
        for h in to_free {
            self.segs.free(&mut self.alloc, h);
        }
        Ok(())
    }

    /// Whether a process is alive.
    ///
    /// # Errors
    ///
    /// Unknown process.
    pub fn is_alive(&self, pid: ProcessId) -> Result<bool, XpcError> {
        Ok(self.process(pid)?.alive)
    }

    /// Info: trampoline VA of an entry (benches target it directly).
    ///
    /// # Errors
    ///
    /// Unknown entry.
    pub fn entry_trampoline(&self, id: XEntryId) -> Result<u64, XpcError> {
        self.entries
            .get(id.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.trampoline_va)
            .ok_or(XpcError::NoSuchEntry(id.0))
    }

    /// Info: owner process of an entry.
    ///
    /// # Errors
    ///
    /// Unknown entry.
    pub fn entry_owner(&self, id: XEntryId) -> Result<ProcessId, XpcError> {
        self.entries
            .get(id.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.owner_process)
            .ok_or(XpcError::NoSuchEntry(id.0))
    }

    /// Info: context count of an entry.
    ///
    /// # Errors
    ///
    /// Unknown entry.
    pub fn entry_max_contexts(&self, id: XEntryId) -> Result<u64, XpcError> {
        self.entries
            .get(id.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.max_contexts)
            .ok_or(XpcError::NoSuchEntry(id.0))
    }
}
