//! Split thread state (§4.2 "Split Thread State").
//!
//! The migrating-thread model lets one schedulable entity execute in many
//! address spaces over its lifetime. The kernel therefore splits what it
//! knows about a thread into a **scheduling state** (fixed: kernel stack,
//! priority, time slice) and a **runtime state** (floats with the
//! migration: current address space and capabilities). On a trap the
//! kernel locates the runtime state through `xcall-cap-reg`, which the
//! hardware updates on every `xcall`.

use xpc_engine::{SegMask, SegReg};

/// Scheduling state: bound 1:1 to the thread for its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedState {
    /// Scheduling priority (higher runs first in the model).
    pub priority: u8,
    /// Time slice in scheduler ticks.
    pub time_slice: u32,
    /// Kernel stack physical address (modelled; traps are host-handled).
    pub kstack_pa: u64,
}

impl SchedState {
    /// Default scheduling parameters.
    pub fn new(kstack_pa: u64) -> Self {
        SchedState {
            priority: 100,
            time_slice: 10,
            kstack_pa,
        }
    }
}

/// Runtime state: everything the kernel needs to serve the thread in its
/// *current* domain; swapped by `xcall`/`xret` rather than by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeState {
    /// Saved general-purpose registers (for preemptive resumption).
    pub gprs: [u64; 32],
    /// Per-thread capability bitmap (the `xcall-cap-reg` value; also the
    /// key the kernel uses to find this state after a trap).
    pub cap_bitmap_pa: u64,
    /// Per-thread link stack base.
    pub link_stack_pa: u64,
    /// Saved link stack top (bytes).
    pub link_sp: u64,
    /// Saved relay segment.
    pub seg: SegReg,
    /// Saved seg-mask.
    pub mask: SegMask,
    /// Saved per-process seg-list base.
    pub seg_list_pa: u64,
    /// Saved `satp` (current address space of the migrating thread).
    pub satp: u64,
    /// Saved PC (valid while descheduled).
    pub pc: u64,
    /// Saved stack pointer.
    pub sp: u64,
}

impl RuntimeState {
    /// Fresh runtime state for a thread that has never run.
    pub fn new(cap_bitmap_pa: u64, link_stack_pa: u64, seg_list_pa: u64, satp: u64) -> Self {
        RuntimeState {
            gprs: [0; 32],
            cap_bitmap_pa,
            link_stack_pa,
            link_sp: 0,
            seg: SegReg::invalid(),
            mask: SegMask::none(),
            seg_list_pa,
            satp,
            pc: 0,
            sp: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_runtime_state_is_empty() {
        let r = RuntimeState::new(0x1000, 0x2000, 0x3000, 42);
        assert_eq!(r.link_sp, 0);
        assert!(!r.seg.is_valid());
        assert!(!r.mask.is_set());
        assert_eq!(r.satp, 42);
    }

    #[test]
    fn sched_state_defaults() {
        let s = SchedState::new(0x9000);
        assert!(s.priority > 0);
        assert!(s.time_slice > 0);
    }
}
