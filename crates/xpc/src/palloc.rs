//! Physical frame allocator for kernel objects and user memory.
//!
//! A bump allocator with an explicit free list is all the prototype needs;
//! relay segments additionally require *contiguous* multi-frame ranges
//! (§3.3: "a memory region backed with continuous physical memory").

use crate::error::XpcError;

/// 4 KiB frames.
pub const FRAME_BYTES: u64 = 4096;

/// Physical frame allocator.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u64,
    limit: u64,
    free: Vec<u64>,
}

impl FrameAlloc {
    /// Allocate frames from `base..base+len` (both frame-aligned).
    pub fn new(base: u64, len: u64) -> Self {
        assert_eq!(base % FRAME_BYTES, 0, "base must be frame-aligned");
        FrameAlloc {
            next: base,
            limit: base + len,
            free: Vec::new(),
        }
    }

    /// Allocate one zero-frame… one frame (caller zeroes if needed).
    ///
    /// # Errors
    ///
    /// [`XpcError::OutOfMemory`] when exhausted.
    pub fn alloc(&mut self) -> Result<u64, XpcError> {
        if let Some(f) = self.free.pop() {
            return Ok(f);
        }
        if self.next + FRAME_BYTES > self.limit {
            return Err(XpcError::OutOfMemory);
        }
        let f = self.next;
        self.next += FRAME_BYTES;
        Ok(f)
    }

    /// Allocate `n` physically *contiguous* frames (for relay segments).
    ///
    /// # Errors
    ///
    /// [`XpcError::OutOfMemory`] when the bump region cannot fit them.
    pub fn alloc_contig(&mut self, n: u64) -> Result<u64, XpcError> {
        let bytes = n * FRAME_BYTES;
        if self.next + bytes > self.limit {
            return Err(XpcError::OutOfMemory);
        }
        let base = self.next;
        self.next += bytes;
        Ok(base)
    }

    /// Return a single frame to the allocator.
    pub fn free(&mut self, frame: u64) {
        debug_assert_eq!(frame % FRAME_BYTES, 0);
        self.free.push(frame);
    }

    /// Bytes still available in the bump region.
    pub fn remaining(&self) -> u64 {
        self.limit - self.next + self.free.len() as u64 * FRAME_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_distinct() {
        let mut a = FrameAlloc::new(0x8010_0000, 16 * FRAME_BYTES);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(f1 % FRAME_BYTES, 0);
    }

    #[test]
    fn free_list_reuses() {
        let mut a = FrameAlloc::new(0x8010_0000, 16 * FRAME_BYTES);
        let f1 = a.alloc().unwrap();
        a.free(f1);
        assert_eq!(a.alloc().unwrap(), f1);
    }

    #[test]
    fn contig_is_contiguous() {
        let mut a = FrameAlloc::new(0x8010_0000, 16 * FRAME_BYTES);
        let base = a.alloc_contig(4).unwrap();
        let next = a.alloc().unwrap();
        assert_eq!(next, base + 4 * FRAME_BYTES);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = FrameAlloc::new(0x8010_0000, 2 * FRAME_BYTES);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc().unwrap_err(), XpcError::OutOfMemory);
        assert_eq!(a.alloc_contig(1).unwrap_err(), XpcError::OutOfMemory);
    }

    #[test]
    fn remaining_tracks() {
        let mut a = FrameAlloc::new(0x8010_0000, 4 * FRAME_BYTES);
        assert_eq!(a.remaining(), 4 * FRAME_BYTES);
        let f = a.alloc().unwrap();
        assert_eq!(a.remaining(), 3 * FRAME_BYTES);
        a.free(f);
        assert_eq!(a.remaining(), 4 * FRAME_BYTES);
    }
}
