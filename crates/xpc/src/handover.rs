//! Handover along calling chains (§4.4): message size negotiation,
//! seg-mask shrinking, and the revocation entry point.
//!
//! The three challenges §4.4 names:
//! 1. intermediate servers may *append* (network stack adding headers) —
//!    solved by negotiating a reservation up the chain;
//! 2. downstream interfaces may only accept *small pieces* (file system
//!    splitting into blocks) — solved by sliding a seg-mask window;
//! 3. a middle process may *terminate* — solved by segment revocation
//!    (implemented in [`crate::kernel::XpcKernel::terminate_process`]).

/// A node in a calling-chain description: how many bytes this server
/// appends to a message, and which servers it may call next.
#[derive(Debug, Clone)]
pub struct ChainNode {
    /// Human-readable name (for reports).
    pub name: String,
    /// Bytes this server itself appends (`S_self`).
    pub self_bytes: u64,
    /// Possible callees.
    pub callees: Vec<ChainNode>,
}

impl ChainNode {
    /// Leaf server appending `self_bytes`.
    pub fn leaf(name: &str, self_bytes: u64) -> Self {
        ChainNode {
            name: name.to_string(),
            self_bytes,
            callees: Vec::new(),
        }
    }

    /// Interior server.
    pub fn node(name: &str, self_bytes: u64, callees: Vec<ChainNode>) -> Self {
        ChainNode {
            name: name.to_string(),
            self_bytes,
            callees,
        }
    }

    /// `S_all` (§4.4): bytes this server *and any chain below it* may
    /// append — `S_self + max(S_all(callee))`.
    pub fn negotiate(&self) -> u64 {
        self.self_bytes
            + self
                .callees
                .iter()
                .map(ChainNode::negotiate)
                .max()
                .unwrap_or(0)
    }
}

/// Reservation a client should make for a payload of `payload` bytes sent
/// into `chain`: payload plus the negotiated headroom.
pub fn reserve_bytes(payload: u64, chain: &ChainNode) -> u64 {
    payload + chain.negotiate()
}

/// Plan the sliding-window transfer of §4.4's "Message Shrink": yields
/// `(offset, len)` mask windows covering `total` bytes in `piece`-sized
/// chunks (the file-system server feeding a block server one block at a
/// time).
pub fn shrink_windows(total: u64, piece: u64) -> Vec<(u64, u64)> {
    assert!(piece > 0, "piece must be positive");
    let mut out = Vec::new();
    let mut off = 0;
    while off < total {
        let len = piece.min(total - off);
        out.push((off, len));
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_takes_max_branch() {
        // A -> B -> [C | D] from §4.4.
        let chain = ChainNode::node(
            "B",
            16,
            vec![ChainNode::leaf("C", 100), ChainNode::leaf("D", 40)],
        );
        assert_eq!(chain.negotiate(), 116);
        assert_eq!(reserve_bytes(1000, &chain), 1116);
    }

    #[test]
    fn leaf_negotiates_self_only() {
        assert_eq!(ChainNode::leaf("disk", 0).negotiate(), 0);
        assert_eq!(ChainNode::leaf("net", 64).negotiate(), 64);
    }

    #[test]
    fn deep_chain_sums() {
        let chain = ChainNode::node(
            "a",
            1,
            vec![ChainNode::node("b", 2, vec![ChainNode::leaf("c", 3)])],
        );
        assert_eq!(chain.negotiate(), 6);
    }

    #[test]
    fn shrink_covers_exactly() {
        let w = shrink_windows(1 << 20, 4096);
        assert_eq!(w.len(), 256);
        assert_eq!(w[0], (0, 4096));
        assert_eq!(w[255], ((1 << 20) - 4096, 4096));
        let total: u64 = w.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 1 << 20);
    }

    #[test]
    fn shrink_handles_ragged_tail() {
        let w = shrink_windows(10_000, 4096);
        assert_eq!(w.last().copied(), Some((8192, 10_000 - 8192)));
    }

    #[test]
    fn shrink_empty_message() {
        assert!(shrink_windows(0, 4096).is_empty());
    }
}
