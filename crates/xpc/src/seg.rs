//! Relay-segment allocation and the kernel's two §3.3 guarantees:
//!
//! 1. **No overlap**: a relay segment's virtual range is carved from a
//!    window the kernel never maps through page tables, and segments never
//!    overlap each other — so the seg-reg translation can never shadow (or
//!    be shadowed by) a page-table mapping, and no TLB shootdown is needed
//!    when ownership moves.
//! 2. **Single owner**: each segment is owned by exactly one thread (or
//!    stashed in exactly one process's seg-list) at any time, which is the
//!    TOCTTOU defense — the sender cannot mutate a message after passing
//!    it.

use crate::error::XpcError;
use crate::layout::{RELAY_REGION_LEN, RELAY_REGION_VA};
use crate::palloc::{FrameAlloc, FRAME_BYTES};
use xpc_engine::SegReg;

/// Handle to an allocated relay segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegHandle(pub u64);

/// Who currently holds a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegOwner {
    /// Live in a thread's seg-reg (by thread id).
    Thread(u64),
    /// Stashed in a process's seg-list (process id, slot).
    ListSlot(u64, u64),
    /// Returned to the allocator.
    Freed,
}

#[derive(Debug, Clone)]
struct SegInfo {
    seg: SegReg,
    owner: SegOwner,
}

/// Window footprint of a segment: its VA range rounded to whole frames
/// (paged segments already carry a frame-multiple `len`).
fn window_bytes(seg: &SegReg) -> u64 {
    if seg.paged {
        seg.len
    } else {
        seg.len.max(1).div_ceil(FRAME_BYTES) * FRAME_BYTES
    }
}

/// Kernel-side registry of every relay segment.
#[derive(Debug, Clone)]
pub struct SegRegistry {
    segs: Vec<SegInfo>,
    /// Fresh-window bump cursor; everything below it is either live or on
    /// the free list.
    va_cursor: u64,
    /// Reclaimed VA ranges `(base, bytes)`, sorted by base and coalesced,
    /// so a long-running server's window space is bounded by its *live*
    /// segments, not by its cumulative allocation history.
    free_va: Vec<(u64, u64)>,
}

impl Default for SegRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SegRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SegRegistry {
            segs: Vec::new(),
            va_cursor: RELAY_REGION_VA,
            free_va: Vec::new(),
        }
    }

    /// Carve `bytes` (frame-multiple) out of the relay window: first fit
    /// from the reclaimed ranges, else fresh space at the bump cursor.
    fn alloc_window(&mut self, bytes: u64) -> Result<u64, XpcError> {
        debug_assert_eq!(bytes % FRAME_BYTES, 0);
        if let Some(i) = self.free_va.iter().position(|&(_, len)| len >= bytes) {
            let (base, len) = self.free_va[i];
            if len == bytes {
                self.free_va.remove(i);
            } else {
                self.free_va[i] = (base + bytes, len - bytes);
            }
            return Ok(base);
        }
        let end = self
            .va_cursor
            .checked_add(bytes)
            .ok_or(XpcError::OutOfMemory)?;
        if end > RELAY_REGION_VA + RELAY_REGION_LEN {
            return Err(XpcError::OutOfMemory);
        }
        let va = self.va_cursor;
        self.va_cursor = end;
        Ok(va)
    }

    /// Return `[va, va + bytes)` to the window: coalescing insert into the
    /// free list, then retract the bump cursor over any block touching it.
    fn free_window(&mut self, va: u64, bytes: u64) {
        let i = self.free_va.partition_point(|&(b, _)| b < va);
        self.free_va.insert(i, (va, bytes));
        if i + 1 < self.free_va.len()
            && self.free_va[i].0 + self.free_va[i].1 == self.free_va[i + 1].0
        {
            self.free_va[i].1 += self.free_va[i + 1].1;
            self.free_va.remove(i + 1);
        }
        if i > 0 && self.free_va[i - 1].0 + self.free_va[i - 1].1 == self.free_va[i].0 {
            self.free_va[i - 1].1 += self.free_va[i].1;
            self.free_va.remove(i);
        }
        while let Some(&(b, l)) = self.free_va.last() {
            if b + l == self.va_cursor {
                self.va_cursor = b;
                self.free_va.pop();
            } else {
                break;
            }
        }
    }

    /// Allocate a segment of `len` bytes (rounded up to whole frames),
    /// owned by `owner_thread`.
    ///
    /// # Errors
    ///
    /// Out-of-memory (physical frames or virtual window).
    pub fn alloc(
        &mut self,
        alloc: &mut FrameAlloc,
        len: u64,
        owner_thread: u64,
        writable: bool,
    ) -> Result<SegHandle, XpcError> {
        let frames = len.max(1).div_ceil(FRAME_BYTES);
        let bytes = frames
            .checked_mul(FRAME_BYTES)
            .ok_or(XpcError::OutOfMemory)?;
        let va = self.alloc_window(bytes)?;
        let pa = match alloc.alloc_contig(frames) {
            Ok(pa) => pa,
            Err(e) => {
                self.free_window(va, bytes);
                return Err(e);
            }
        };
        let seg = SegReg {
            va_base: va,
            pa_base: pa,
            len,
            writable,
            paged: false,
        };
        self.segs.push(SegInfo {
            seg,
            owner: SegOwner::Thread(owner_thread),
        });
        Ok(SegHandle(self.segs.len() as u64 - 1))
    }

    /// Allocate a §6.2 *relay-page-table* segment of `pages` pages: the
    /// backing frames need not be contiguous; a one-level table (whose
    /// frame is also allocated here) maps window page i to frame i.
    /// Returns the handle, the table's physical address, and the frames
    /// (the kernel writes the PPN entries — the registry has no memory
    /// access).
    ///
    /// # Errors
    ///
    /// Out-of-memory (frames, table, or virtual window).
    pub fn alloc_paged(
        &mut self,
        alloc: &mut FrameAlloc,
        pages: u64,
        owner_thread: u64,
        writable: bool,
    ) -> Result<(SegHandle, u64, Vec<u64>), XpcError> {
        assert!(pages > 0, "empty paged segment");
        let bytes = pages
            .checked_mul(FRAME_BYTES)
            .ok_or(XpcError::OutOfMemory)?;
        let va = self.alloc_window(bytes)?;
        let table_pa = match alloc.alloc() {
            Ok(pa) => pa,
            Err(e) => {
                self.free_window(va, bytes);
                return Err(e);
            }
        };
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match alloc.alloc() {
                Ok(f) => frames.push(f),
                Err(e) => {
                    // Unwind the partial allocation: data frames, the
                    // table frame, and the window reservation.
                    for f in frames {
                        alloc.free(f);
                    }
                    alloc.free(table_pa);
                    self.free_window(va, bytes);
                    return Err(e);
                }
            }
        }
        let seg = SegReg {
            va_base: va,
            pa_base: table_pa,
            len: bytes,
            writable,
            paged: true,
        };
        self.segs.push(SegInfo {
            seg,
            owner: SegOwner::Thread(owner_thread),
        });
        Ok((SegHandle(self.segs.len() as u64 - 1), table_pa, frames))
    }

    /// The segment register value for `h`.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (kernel bug).
    pub fn seg_reg(&self, h: SegHandle) -> SegReg {
        self.segs[h.0 as usize].seg
    }

    /// Current owner of `h`.
    pub fn owner(&self, h: SegHandle) -> SegOwner {
        self.segs[h.0 as usize].owner
    }

    /// Transfer ownership (kernel-observed; e.g. along a calling chain or
    /// into a seg-list slot).
    ///
    /// # Errors
    ///
    /// [`XpcError::SegNotOwned`] if the segment was freed.
    pub fn transfer(&mut self, h: SegHandle, to: SegOwner) -> Result<(), XpcError> {
        let info = &mut self.segs[h.0 as usize];
        if info.owner == SegOwner::Freed {
            return Err(XpcError::SegNotOwned {
                seg: h.0,
                owner: None,
            });
        }
        info.owner = to;
        Ok(())
    }

    /// Free a segment, returning its frames to `alloc`. Paged segments
    /// only return their *table* frame here; the kernel (which can read
    /// the table) returns the data frames by iterating the page table
    /// before calling this.
    pub fn free(&mut self, alloc: &mut FrameAlloc, h: SegHandle) {
        let info = &mut self.segs[h.0 as usize];
        if info.owner == SegOwner::Freed {
            return;
        }
        info.owner = SegOwner::Freed;
        let seg = info.seg;
        if seg.paged {
            alloc.free(seg.pa_base);
        } else {
            let frames = seg.len.max(1).div_ceil(FRAME_BYTES);
            for i in 0..frames {
                alloc.free(seg.pa_base + i * FRAME_BYTES);
            }
        }
        self.free_window(seg.va_base, window_bytes(&seg));
    }

    /// All live handles owned by `thread`.
    pub fn owned_by_thread(&self, thread: u64) -> Vec<SegHandle> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.owner == SegOwner::Thread(thread))
            .map(|(n, _)| SegHandle(n as u64))
            .collect()
    }

    /// All live handles stashed in `process`'s seg-list.
    pub fn stashed_in_process(&self, process: u64) -> Vec<SegHandle> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.owner, SegOwner::ListSlot(p, _) if p == process))
            .map(|(n, _)| SegHandle(n as u64))
            .collect()
    }

    /// Invariant: no two live segments overlap in VA or PA, all live
    /// segments sit inside the relay window, and the reclaimed-window free
    /// list is sorted, coalesced, below the bump cursor, and disjoint from
    /// every live segment. Returns a violation message.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live: Vec<&SegInfo> = self
            .segs
            .iter()
            .filter(|i| i.owner != SegOwner::Freed)
            .collect();
        if self.va_cursor < RELAY_REGION_VA || self.va_cursor > RELAY_REGION_VA + RELAY_REGION_LEN {
            return Err(format!(
                "cursor outside relay window: {:#x}",
                self.va_cursor
            ));
        }
        for (n, &(b, l)) in self.free_va.iter().enumerate() {
            if b < RELAY_REGION_VA || b + l > self.va_cursor {
                return Err(format!("free block outside used window: ({b:#x}, {l:#x})"));
            }
            if let Some(&(nb, _)) = self.free_va.get(n + 1) {
                // Equality would mean an uncoalesced pair.
                if b + l >= nb {
                    return Err(format!("free list unsorted or uncoalesced at {n}"));
                }
            }
            for a in &live {
                let wb = window_bytes(&a.seg);
                if a.seg.va_base < b + l && b < a.seg.va_base + wb {
                    return Err(format!(
                        "free block overlaps live segment: ({b:#x}, {l:#x}) vs {:?}",
                        a.seg
                    ));
                }
            }
        }
        for (n, a) in live.iter().enumerate() {
            let a_end = a.seg.va_base + a.seg.len;
            if a.seg.va_base < RELAY_REGION_VA || a_end > RELAY_REGION_VA + RELAY_REGION_LEN {
                return Err(format!("segment outside relay window: {:?}", a.seg));
            }
            for b in live.iter().skip(n + 1) {
                let va_overlap = a.seg.va_base < b.seg.va_base + b.seg.len && b.seg.va_base < a_end;
                // Paged segments' data frames come from the allocator
                // (disjoint by construction); their pa_base is a table
                // pointer, so the linear PA check only applies to
                // contiguous pairs.
                let pa_overlap = !a.seg.paged
                    && !b.seg.paged
                    && a.seg.pa_base < b.seg.pa_base + b.seg.len
                    && b.seg.pa_base < a.seg.pa_base + a.seg.len;
                if va_overlap || pa_overlap {
                    return Err(format!("segments overlap: {:?} vs {:?}", a.seg, b.seg));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PALLOC_BASE;

    fn alloc() -> FrameAlloc {
        FrameAlloc::new(PALLOC_BASE, 1 << 22)
    }

    #[test]
    fn alloc_assigns_disjoint_ranges() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h1 = r.alloc(&mut fa, 4096, 1, true).unwrap();
        let h2 = r.alloc(&mut fa, 100, 1, true).unwrap();
        assert!(r.check_invariants().is_ok());
        let s1 = r.seg_reg(h1);
        let s2 = r.seg_reg(h2);
        assert!(s1.va_base + 4096 <= s2.va_base);
        assert_ne!(s1.pa_base, s2.pa_base);
    }

    #[test]
    fn ownership_lifecycle() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h = r.alloc(&mut fa, 64, 7, true).unwrap();
        assert_eq!(r.owner(h), SegOwner::Thread(7));
        r.transfer(h, SegOwner::ListSlot(3, 0)).unwrap();
        assert_eq!(r.owner(h), SegOwner::ListSlot(3, 0));
        assert_eq!(r.stashed_in_process(3), vec![h]);
        r.free(&mut fa, h);
        assert_eq!(r.owner(h), SegOwner::Freed);
        assert!(r.transfer(h, SegOwner::Thread(1)).is_err());
    }

    #[test]
    fn double_free_is_idempotent() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h = r.alloc(&mut fa, 64, 7, true).unwrap();
        let before = fa.remaining();
        r.free(&mut fa, h);
        let after_first = fa.remaining();
        r.free(&mut fa, h);
        assert_eq!(fa.remaining(), after_first);
        assert!(after_first > before);
    }

    #[test]
    fn window_exhaustion() {
        let mut fa = FrameAlloc::new(PALLOC_BASE, 1 << 30);
        let mut r = SegRegistry::new();
        // One huge segment nearly fills the window.
        r.alloc(&mut fa, RELAY_REGION_LEN - FRAME_BYTES, 1, true)
            .unwrap();
        assert!(matches!(
            r.alloc(&mut fa, 2 * FRAME_BYTES, 1, true),
            Err(XpcError::OutOfMemory)
        ));
    }

    #[test]
    fn paged_partial_failure_releases_everything() {
        // Room for the table frame plus two data frames — not the five
        // data frames a 5-page segment needs, so the third data-frame
        // alloc fails mid-loop.
        let mut fa = FrameAlloc::new(PALLOC_BASE, 3 * FRAME_BYTES);
        let mut r = SegRegistry::new();
        let before = fa.remaining();
        assert!(matches!(
            r.alloc_paged(&mut fa, 5, 1, true),
            Err(XpcError::OutOfMemory)
        ));
        assert_eq!(fa.remaining(), before, "partial allocation leaked frames");
        assert!(r.check_invariants().is_ok());
        // The window reservation was unwound too: a small allocation that
        // fits still starts at the base of the relay window.
        let (h, _, _) = r.alloc_paged(&mut fa, 2, 1, true).unwrap();
        assert_eq!(r.seg_reg(h).va_base, RELAY_REGION_VA);
    }

    #[test]
    fn freed_window_space_is_reclaimed() {
        let mut fa = FrameAlloc::new(PALLOC_BASE, 1 << 30);
        let mut r = SegRegistry::new();
        // Alloc/free more cumulative bytes than the whole relay window:
        // 8 rounds of a quarter-window segment is 2x RELAY_REGION_LEN.
        let quarter = RELAY_REGION_LEN / 4;
        for _ in 0..8 {
            let h = r.alloc(&mut fa, quarter, 1, true).unwrap();
            assert!(r.check_invariants().is_ok());
            r.free(&mut fa, h);
            assert!(r.check_invariants().is_ok());
        }
        // Non-LIFO pattern: free a hole in the middle and fill it.
        let a = r.alloc(&mut fa, quarter, 1, true).unwrap();
        let b = r.alloc(&mut fa, quarter, 1, true).unwrap();
        let a_va = r.seg_reg(a).va_base;
        r.free(&mut fa, a);
        let c = r.alloc(&mut fa, quarter / 2, 1, true).unwrap();
        assert_eq!(r.seg_reg(c).va_base, a_va, "hole is reused first-fit");
        assert!(r.check_invariants().is_ok());
        r.free(&mut fa, b);
        r.free(&mut fa, c);
        assert!(r.check_invariants().is_ok());
        // With zero live segments the full window is available again.
        let h = r.alloc(&mut fa, RELAY_REGION_LEN / 2, 1, true).unwrap();
        assert!(r.check_invariants().is_ok());
        r.free(&mut fa, h);
    }

    #[test]
    fn huge_len_is_oom_not_overflow() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        for len in [u64::MAX, u64::MAX - FRAME_BYTES, 1 << 60] {
            assert!(matches!(
                r.alloc(&mut fa, len, 1, true),
                Err(XpcError::OutOfMemory)
            ));
        }
        for pages in [u64::MAX, u64::MAX / FRAME_BYTES + 1, 1 << 52] {
            assert!(matches!(
                r.alloc_paged(&mut fa, pages, 1, true),
                Err(XpcError::OutOfMemory)
            ));
        }
        assert!(r.check_invariants().is_ok());
        // The registry is still usable afterwards.
        assert!(r.alloc(&mut fa, 64, 1, true).is_ok());
    }

    #[test]
    fn owned_by_thread_filters() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h1 = r.alloc(&mut fa, 64, 1, true).unwrap();
        let _h2 = r.alloc(&mut fa, 64, 2, true).unwrap();
        assert_eq!(r.owned_by_thread(1), vec![h1]);
    }
}
