//! Relay-segment allocation and the kernel's two §3.3 guarantees:
//!
//! 1. **No overlap**: a relay segment's virtual range is carved from a
//!    window the kernel never maps through page tables, and segments never
//!    overlap each other — so the seg-reg translation can never shadow (or
//!    be shadowed by) a page-table mapping, and no TLB shootdown is needed
//!    when ownership moves.
//! 2. **Single owner**: each segment is owned by exactly one thread (or
//!    stashed in exactly one process's seg-list) at any time, which is the
//!    TOCTTOU defense — the sender cannot mutate a message after passing
//!    it.

use crate::error::XpcError;
use crate::layout::{RELAY_REGION_LEN, RELAY_REGION_VA};
use crate::palloc::{FrameAlloc, FRAME_BYTES};
use xpc_engine::SegReg;

/// Handle to an allocated relay segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegHandle(pub u64);

/// Who currently holds a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegOwner {
    /// Live in a thread's seg-reg (by thread id).
    Thread(u64),
    /// Stashed in a process's seg-list (process id, slot).
    ListSlot(u64, u64),
    /// Returned to the allocator.
    Freed,
}

#[derive(Debug, Clone)]
struct SegInfo {
    seg: SegReg,
    owner: SegOwner,
}

/// Kernel-side registry of every relay segment.
#[derive(Debug, Clone, Default)]
pub struct SegRegistry {
    segs: Vec<SegInfo>,
    va_cursor: u64,
}

impl SegRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SegRegistry {
            segs: Vec::new(),
            va_cursor: RELAY_REGION_VA,
        }
    }

    /// Allocate a segment of `len` bytes (rounded up to whole frames),
    /// owned by `owner_thread`.
    ///
    /// # Errors
    ///
    /// Out-of-memory (physical frames or virtual window).
    pub fn alloc(
        &mut self,
        alloc: &mut FrameAlloc,
        len: u64,
        owner_thread: u64,
        writable: bool,
    ) -> Result<SegHandle, XpcError> {
        let frames = len.max(1).div_ceil(FRAME_BYTES);
        let bytes = frames * FRAME_BYTES;
        if self.va_cursor + bytes > RELAY_REGION_VA + RELAY_REGION_LEN {
            return Err(XpcError::OutOfMemory);
        }
        let pa = alloc.alloc_contig(frames)?;
        let va = self.va_cursor;
        self.va_cursor += bytes;
        let seg = SegReg {
            va_base: va,
            pa_base: pa,
            len,
            writable,
            paged: false,
        };
        self.segs.push(SegInfo {
            seg,
            owner: SegOwner::Thread(owner_thread),
        });
        Ok(SegHandle(self.segs.len() as u64 - 1))
    }

    /// Allocate a §6.2 *relay-page-table* segment of `pages` pages: the
    /// backing frames need not be contiguous; a one-level table (whose
    /// frame is also allocated here) maps window page i to frame i.
    /// Returns the handle, the table's physical address, and the frames
    /// (the kernel writes the PPN entries — the registry has no memory
    /// access).
    ///
    /// # Errors
    ///
    /// Out-of-memory (frames, table, or virtual window).
    pub fn alloc_paged(
        &mut self,
        alloc: &mut FrameAlloc,
        pages: u64,
        owner_thread: u64,
        writable: bool,
    ) -> Result<(SegHandle, u64, Vec<u64>), XpcError> {
        assert!(pages > 0, "empty paged segment");
        let bytes = pages * FRAME_BYTES;
        if self.va_cursor + bytes > RELAY_REGION_VA + RELAY_REGION_LEN {
            return Err(XpcError::OutOfMemory);
        }
        let table_pa = alloc.alloc()?;
        let frames: Vec<u64> = (0..pages)
            .map(|_| alloc.alloc())
            .collect::<Result<_, _>>()?;
        let va = self.va_cursor;
        self.va_cursor += bytes;
        let seg = SegReg {
            va_base: va,
            pa_base: table_pa,
            len: bytes,
            writable,
            paged: true,
        };
        self.segs.push(SegInfo {
            seg,
            owner: SegOwner::Thread(owner_thread),
        });
        Ok((SegHandle(self.segs.len() as u64 - 1), table_pa, frames))
    }

    /// The segment register value for `h`.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (kernel bug).
    pub fn seg_reg(&self, h: SegHandle) -> SegReg {
        self.segs[h.0 as usize].seg
    }

    /// Current owner of `h`.
    pub fn owner(&self, h: SegHandle) -> SegOwner {
        self.segs[h.0 as usize].owner
    }

    /// Transfer ownership (kernel-observed; e.g. along a calling chain or
    /// into a seg-list slot).
    ///
    /// # Errors
    ///
    /// [`XpcError::SegNotOwned`] if the segment was freed.
    pub fn transfer(&mut self, h: SegHandle, to: SegOwner) -> Result<(), XpcError> {
        let info = &mut self.segs[h.0 as usize];
        if info.owner == SegOwner::Freed {
            return Err(XpcError::SegNotOwned {
                seg: h.0,
                owner: None,
            });
        }
        info.owner = to;
        Ok(())
    }

    /// Free a segment, returning its frames to `alloc`. Paged segments
    /// only return their *table* frame here; the kernel (which can read
    /// the table) returns the data frames via
    /// [`SegRegistry::free_paged_frames`]-style iteration before calling
    /// this.
    pub fn free(&mut self, alloc: &mut FrameAlloc, h: SegHandle) {
        let info = &mut self.segs[h.0 as usize];
        if info.owner == SegOwner::Freed {
            return;
        }
        if info.seg.paged {
            alloc.free(info.seg.pa_base);
        } else {
            let frames = info.seg.len.max(1).div_ceil(FRAME_BYTES);
            for i in 0..frames {
                alloc.free(info.seg.pa_base + i * FRAME_BYTES);
            }
        }
        info.owner = SegOwner::Freed;
    }

    /// All live handles owned by `thread`.
    pub fn owned_by_thread(&self, thread: u64) -> Vec<SegHandle> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.owner == SegOwner::Thread(thread))
            .map(|(n, _)| SegHandle(n as u64))
            .collect()
    }

    /// All live handles stashed in `process`'s seg-list.
    pub fn stashed_in_process(&self, process: u64) -> Vec<SegHandle> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.owner, SegOwner::ListSlot(p, _) if p == process))
            .map(|(n, _)| SegHandle(n as u64))
            .collect()
    }

    /// Invariant: no two live segments overlap in VA or PA, and all live
    /// segments sit inside the relay window. Returns a violation message.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live: Vec<&SegInfo> = self
            .segs
            .iter()
            .filter(|i| i.owner != SegOwner::Freed)
            .collect();
        for (n, a) in live.iter().enumerate() {
            let a_end = a.seg.va_base + a.seg.len;
            if a.seg.va_base < RELAY_REGION_VA || a_end > RELAY_REGION_VA + RELAY_REGION_LEN {
                return Err(format!("segment outside relay window: {:?}", a.seg));
            }
            for b in live.iter().skip(n + 1) {
                let va_overlap =
                    a.seg.va_base < b.seg.va_base + b.seg.len && b.seg.va_base < a_end;
                // Paged segments' data frames come from the allocator
                // (disjoint by construction); their pa_base is a table
                // pointer, so the linear PA check only applies to
                // contiguous pairs.
                let pa_overlap = !a.seg.paged
                    && !b.seg.paged
                    && a.seg.pa_base < b.seg.pa_base + b.seg.len
                    && b.seg.pa_base < a.seg.pa_base + a.seg.len;
                if va_overlap || pa_overlap {
                    return Err(format!("segments overlap: {:?} vs {:?}", a.seg, b.seg));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PALLOC_BASE;

    fn alloc() -> FrameAlloc {
        FrameAlloc::new(PALLOC_BASE, 1 << 22)
    }

    #[test]
    fn alloc_assigns_disjoint_ranges() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h1 = r.alloc(&mut fa, 4096, 1, true).unwrap();
        let h2 = r.alloc(&mut fa, 100, 1, true).unwrap();
        assert!(r.check_invariants().is_ok());
        let s1 = r.seg_reg(h1);
        let s2 = r.seg_reg(h2);
        assert!(s1.va_base + 4096 <= s2.va_base);
        assert_ne!(s1.pa_base, s2.pa_base);
    }

    #[test]
    fn ownership_lifecycle() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h = r.alloc(&mut fa, 64, 7, true).unwrap();
        assert_eq!(r.owner(h), SegOwner::Thread(7));
        r.transfer(h, SegOwner::ListSlot(3, 0)).unwrap();
        assert_eq!(r.owner(h), SegOwner::ListSlot(3, 0));
        assert_eq!(r.stashed_in_process(3), vec![h]);
        r.free(&mut fa, h);
        assert_eq!(r.owner(h), SegOwner::Freed);
        assert!(r.transfer(h, SegOwner::Thread(1)).is_err());
    }

    #[test]
    fn double_free_is_idempotent() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h = r.alloc(&mut fa, 64, 7, true).unwrap();
        let before = fa.remaining();
        r.free(&mut fa, h);
        let after_first = fa.remaining();
        r.free(&mut fa, h);
        assert_eq!(fa.remaining(), after_first);
        assert!(after_first > before);
    }

    #[test]
    fn window_exhaustion() {
        let mut fa = FrameAlloc::new(PALLOC_BASE, 1 << 30);
        let mut r = SegRegistry::new();
        // One huge segment nearly fills the window.
        r.alloc(&mut fa, RELAY_REGION_LEN - FRAME_BYTES, 1, true)
            .unwrap();
        assert!(matches!(
            r.alloc(&mut fa, 2 * FRAME_BYTES, 1, true),
            Err(XpcError::OutOfMemory)
        ));
    }

    #[test]
    fn owned_by_thread_filters() {
        let mut fa = alloc();
        let mut r = SegRegistry::new();
        let h1 = r.alloc(&mut fa, 64, 1, true).unwrap();
        let _h2 = r.alloc(&mut fa, 64, 2, true).unwrap();
        assert_eq!(r.owned_by_thread(1), vec![h1]);
    }
}
