//! The XPC OS primitive (ISCA'19): kernel control plane and user library
//! over the hardware engine in [`xpc_engine`].
//!
//! §3 of the paper splits IPC into a **control plane** (the kernel:
//! creating x-entries, granting capabilities, allocating relay segments,
//! handling termination) and a **data plane** (the engine: `xcall`/`xret`
//! at user level). This crate is the control plane plus the user library:
//!
//! * [`kernel::XpcKernel`] — processes with real Sv39 page tables, threads
//!   with split scheduling/runtime state (§4.2), x-entry registration,
//!   `grant-cap` propagation, abnormal-termination handling (link-stack
//!   scanning / page-table zeroing), context switches that save/restore the
//!   per-thread engine registers;
//! * [`seg`] — the relay-segment allocator with the two kernel guarantees
//!   of §3.3: a relay-seg never overlaps any page-table mapping, and has
//!   exactly one owner at any time (TOCTTOU defense);
//! * [`trampoline`] — generated guest code: caller-side full/partial
//!   context save (Figure 5's "Trampoline" component) and the callee-side
//!   per-invocation C-stack trampoline (§4.2);
//! * [`handover`] — message size negotiation, seg-mask shrinking and
//!   segment revocation along calling chains (§4.4).
//!
//! Everything executes on the [`rv64`] emulator: `xcall` really switches
//! page tables, relay segments really translate ahead of the page table,
//! and every number is a cycle count from the machine's timing model.

#![forbid(unsafe_code)]

pub mod error;
pub mod handover;
pub mod kernel;
pub mod layout;
pub mod pagetable;
pub mod palloc;
pub mod seg;
pub mod thread;
pub mod trampoline;

pub use error::XpcError;
pub use kernel::{KernelHardening, ProcessId, ThreadId, XEntryId, XpcKernel, XpcKernelConfig};
pub use seg::SegHandle;
