//! Sv39 page-table construction for process address spaces.
//!
//! The kernel writes page tables as ordinary physical memory; the
//! emulator's MMU then walks them exactly as hardware would. Each process
//! gets its own root and an ASID, so the tagged-TLB configurations of
//! Figure 5 behave as on real hardware.

use crate::error::XpcError;
use crate::palloc::{FrameAlloc, FRAME_BYTES};
use rv64::mem::Memory;
use rv64::mmu::Satp;
use rv64::tlb::pte;

/// Page permission sets used by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePerms {
    /// User read+execute (code).
    UserCode,
    /// User read+write (data/stack).
    UserData,
    /// User read-only.
    UserRo,
    /// Supervisor read+write (kernel data).
    KernelData,
}

impl PagePerms {
    fn bits(self) -> u64 {
        match self {
            PagePerms::UserCode => pte::R | pte::X | pte::U,
            PagePerms::UserData => pte::R | pte::W | pte::U,
            PagePerms::UserRo => pte::R | pte::U,
            PagePerms::KernelData => pte::R | pte::W,
        }
    }
}

/// A process address space under construction / in use.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    root_pa: u64,
    asid: u16,
    /// Mapped virtual ranges, kept for overlap checks `(va, len)`.
    mappings: Vec<(u64, u64)>,
}

impl AddressSpace {
    /// Allocate an empty address space with `asid` (root table zeroed).
    ///
    /// # Errors
    ///
    /// [`XpcError::OutOfMemory`] if no frame is available for the root.
    pub fn new(mem: &mut Memory, alloc: &mut FrameAlloc, asid: u16) -> Result<Self, XpcError> {
        let root_pa = alloc.alloc()?;
        zero_frame(mem, root_pa);
        Ok(AddressSpace {
            root_pa,
            asid,
            mappings: Vec::new(),
        })
    }

    /// Root page-table physical address.
    pub fn root_pa(&self) -> u64 {
        self.root_pa
    }

    /// ASID of this space.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// The `satp` value activating this space.
    pub fn satp(&self) -> Satp {
        Satp {
            enabled: true,
            asid: self.asid,
            root_ppn: self.root_pa >> 12,
        }
    }

    /// Raw `satp` CSR value.
    pub fn satp_raw(&self) -> u64 {
        self.satp().to_raw()
    }

    /// Whether `va..va+len` intersects an existing mapping.
    pub fn overlaps(&self, va: u64, len: u64) -> bool {
        self.mappings
            .iter()
            .any(|&(mva, mlen)| va < mva + mlen && mva < va + len)
    }

    /// Map one 4 KiB page `va -> pa`.
    ///
    /// # Errors
    ///
    /// Out-of-memory for intermediate tables.
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses (kernel bug, not guest input).
    pub fn map_page(
        &mut self,
        mem: &mut Memory,
        alloc: &mut FrameAlloc,
        va: u64,
        pa: u64,
        perms: PagePerms,
    ) -> Result<(), XpcError> {
        assert_eq!(va % FRAME_BYTES, 0, "va unaligned");
        assert_eq!(pa % FRAME_BYTES, 0, "pa unaligned");
        let vpn = [(va >> 30) & 0x1ff, (va >> 21) & 0x1ff, (va >> 12) & 0x1ff];
        let mut table = self.root_pa;
        for idx in vpn.iter().take(2) {
            let slot = table + idx * 8;
            let entry = mem.read(slot, 8).expect("page table in DRAM");
            if entry & pte::V == 0 {
                let next = alloc.alloc()?;
                zero_frame(mem, next);
                mem.write(slot, 8, ((next >> 12) << 10) | pte::V)
                    .expect("page table in DRAM");
                table = next;
            } else {
                table = ((entry >> 10) & ((1 << 44) - 1)) << 12;
            }
        }
        let leaf = table + vpn[2] * 8;
        mem.write(leaf, 8, ((pa >> 12) << 10) | perms.bits() | pte::V)
            .expect("page table in DRAM");
        self.mappings.push((va, FRAME_BYTES));
        Ok(())
    }

    /// Map `n` fresh frames at `va`, returning the first frame's PA.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn map_fresh(
        &mut self,
        mem: &mut Memory,
        alloc: &mut FrameAlloc,
        va: u64,
        n: u64,
        perms: PagePerms,
    ) -> Result<u64, XpcError> {
        let base = alloc.alloc_contig(n)?;
        for i in 0..n {
            self.map_page(
                mem,
                alloc,
                va + i * FRAME_BYTES,
                base + i * FRAME_BYTES,
                perms,
            )?;
        }
        Ok(base)
    }

    /// Zero the top-level table — the §4.2 fast-termination trick: every
    /// future access in this space page-faults, giving the kernel a hook
    /// without scanning all link stacks eagerly.
    pub fn zero_root(&mut self, mem: &mut Memory) {
        zero_frame(mem, self.root_pa);
        self.mappings.clear();
    }
}

/// Zero one physical frame (loader-path, not cycle-charged).
pub fn zero_frame(mem: &mut Memory, pa: u64) {
    for off in (0..FRAME_BYTES).step_by(8) {
        mem.write(pa + off, 8, 0).expect("frame in DRAM");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PALLOC_BASE;
    use rv64::cpu::Mode;
    use rv64::mmu::{Access, Mmu};
    use rv64::{cache::Cache, MachineConfig};

    fn setup() -> (Memory, FrameAlloc, Mmu, Cache, MachineConfig) {
        let cfg = MachineConfig::rocket_u500();
        (
            Memory::new(cfg.dram_size),
            FrameAlloc::new(PALLOC_BASE, 1 << 20),
            Mmu::new(&cfg),
            Cache::new(cfg.dcache),
            cfg,
        )
    }

    #[test]
    fn map_then_translate() {
        let (mut mem, mut alloc, mut mmu, mut dc, cfg) = setup();
        let mut space = AddressSpace::new(&mut mem, &mut alloc, 7).unwrap();
        let pa = alloc.alloc().unwrap();
        space
            .map_page(&mut mem, &mut alloc, 0x1_0000, pa, PagePerms::UserData)
            .unwrap();
        let t = mmu
            .translate(
                0x1_0008,
                8,
                Access::Store,
                Mode::User,
                space.satp(),
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap();
        assert_eq!(t.pa, pa + 8);
    }

    #[test]
    fn code_pages_not_writable() {
        let (mut mem, mut alloc, mut mmu, mut dc, cfg) = setup();
        let mut space = AddressSpace::new(&mut mem, &mut alloc, 1).unwrap();
        let pa = alloc.alloc().unwrap();
        space
            .map_page(&mut mem, &mut alloc, 0x1_0000, pa, PagePerms::UserCode)
            .unwrap();
        assert!(mmu
            .translate(
                0x1_0000,
                8,
                Access::Store,
                Mode::User,
                space.satp(),
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_err());
        assert!(mmu
            .translate(
                0x1_0000,
                4,
                Access::Fetch,
                Mode::User,
                space.satp(),
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_ok());
    }

    #[test]
    fn overlap_detection() {
        let (mut mem, mut alloc, _, _, _) = setup();
        let mut space = AddressSpace::new(&mut mem, &mut alloc, 1).unwrap();
        let pa = alloc.alloc().unwrap();
        space
            .map_page(&mut mem, &mut alloc, 0x1_0000, pa, PagePerms::UserData)
            .unwrap();
        assert!(space.overlaps(0x1_0000, 1));
        assert!(space.overlaps(0xf_f00, 0x200));
        assert!(!space.overlaps(0x1_1000, 0x1000));
    }

    #[test]
    fn zero_root_unmaps_everything() {
        let (mut mem, mut alloc, mut mmu, mut dc, cfg) = setup();
        let mut space = AddressSpace::new(&mut mem, &mut alloc, 1).unwrap();
        let pa = alloc.alloc().unwrap();
        space
            .map_page(&mut mem, &mut alloc, 0x1_0000, pa, PagePerms::UserData)
            .unwrap();
        space.zero_root(&mut mem);
        assert!(mmu
            .translate(
                0x1_0000,
                8,
                Access::Load,
                Mode::User,
                space.satp(),
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_err());
    }

    #[test]
    fn distinct_asids() {
        let (mut mem, mut alloc, _, _, _) = setup();
        let a = AddressSpace::new(&mut mem, &mut alloc, 1).unwrap();
        let b = AddressSpace::new(&mut mem, &mut alloc, 2).unwrap();
        assert_ne!(a.satp_raw(), b.satp_raw());
        assert_ne!(a.root_pa(), b.root_pa());
    }
}
