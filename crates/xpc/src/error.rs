//! Error type of the XPC control plane.

use std::fmt;

/// Errors returned by [`crate::kernel::XpcKernel`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XpcError {
    /// Physical memory exhausted.
    OutOfMemory,
    /// Unknown process ID.
    NoSuchProcess(u64),
    /// Unknown thread ID.
    NoSuchThread(u64),
    /// Unknown x-entry ID.
    NoSuchEntry(u64),
    /// x-entry table is full.
    TableFull,
    /// The thread lacks the grant capability needed for the operation
    /// (§4.2: grants require a `grant-cap`).
    NoGrantCap { thread: u64, entry: u64 },
    /// The relay segment is owned by another thread (single-owner rule).
    SegNotOwned { seg: u64, owner: Option<u64> },
    /// The requested virtual range collides with an existing mapping —
    /// the kernel must never let a relay-seg overlap a page-table mapping.
    SegOverlap { va: u64, len: u64 },
    /// Per-process seg-list is full.
    SegListFull,
    /// A segment access escapes the segment, including ranges whose
    /// `offset + len` wraps the 64-bit space (checked, never wrapped).
    SegOutOfBounds { seg: u64, offset: u64, len: u64 },
    /// A flow-tagged grant would cross a tenant boundary (the
    /// [`crate::kernel::KernelHardening::flow_tags`] mitigation refuses
    /// to mint a capability whose use would pop another tenant's
    /// linkage records).
    CrossTenantGrant {
        granter_tenant: u64,
        grantee_tenant: u64,
        entry: u64,
    },
    /// The guest faulted in a way the scenario did not expect.
    GuestFault(String),
    /// The guest exceeded its instruction budget.
    Timeout,
    /// No idle XPC context available and the entry's policy is fail-fast.
    NoIdleContext(u64),
}

impl fmt::Display for XpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XpcError::OutOfMemory => write!(f, "physical memory exhausted"),
            XpcError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            XpcError::NoSuchThread(t) => write!(f, "no such thread: {t}"),
            XpcError::NoSuchEntry(e) => write!(f, "no such x-entry: {e}"),
            XpcError::TableFull => write!(f, "x-entry table full"),
            XpcError::NoGrantCap { thread, entry } => {
                write!(f, "thread {thread} holds no grant-cap for x-entry {entry}")
            }
            XpcError::SegNotOwned { seg, owner } => {
                write!(
                    f,
                    "relay segment {seg} not owned by caller (owner: {owner:?})"
                )
            }
            XpcError::SegOverlap { va, len } => {
                write!(
                    f,
                    "relay segment {va:#x}+{len:#x} overlaps an existing mapping"
                )
            }
            XpcError::SegListFull => write!(f, "per-process seg-list full"),
            XpcError::SegOutOfBounds { seg, offset, len } => {
                write!(
                    f,
                    "access [{offset:#x}, {offset:#x}+{len:#x}) escapes relay segment {seg}"
                )
            }
            XpcError::CrossTenantGrant {
                granter_tenant,
                grantee_tenant,
                entry,
            } => {
                write!(
                    f,
                    "flow tags refuse the grant of x-entry {entry} across tenants \
                     {granter_tenant}→{grantee_tenant}"
                )
            }
            XpcError::GuestFault(s) => write!(f, "unexpected guest fault: {s}"),
            XpcError::Timeout => write!(f, "guest instruction budget exhausted"),
            XpcError::NoIdleContext(e) => {
                write!(f, "no idle XPC context for x-entry {e}")
            }
        }
    }
}

impl std::error::Error for XpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            XpcError::OutOfMemory,
            XpcError::NoSuchProcess(3),
            XpcError::SegOverlap {
                va: 0x1000,
                len: 64,
            },
            XpcError::NoGrantCap {
                thread: 1,
                entry: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
