//! Virtual/physical address map used by the prototype kernel.
//!
//! Mirrors §4.1: the kernel owns the x-entry table globally, per-thread
//! link stacks (8 KiB) and capability bitmaps (128 B), and a 4 KiB seg-list
//! page per address space. Relay segments live in a dedicated virtual
//! window that the kernel never maps through page tables, which is what
//! makes the §3.3 no-overlap guarantee easy to maintain.

use rv64::mem::DRAM_BASE;

/// Physical address of the M-mode kernel stub (a single `ebreak` that
/// bounces every trap to the host-side kernel).
pub const KSTUB_PA: u64 = DRAM_BASE + 0x1000;

/// Physical address of the global x-entry table.
pub const XENTRY_TABLE_PA: u64 = DRAM_BASE + 0x10_000;

/// Entries in the x-entry table (§4.1 uses 1024).
pub const XENTRY_TABLE_ENTRIES: u64 = 1024;

/// First physical frame handed to the allocator.
pub const PALLOC_BASE: u64 = DRAM_BASE + 0x20_000;

/// Virtual base of process code. The VPN indices are chosen so the hot
/// page-walk lines spread over D-cache sets instead of colliding: with a
/// 4 KiB-way VIPT cache, a PTE at index i of its (page-aligned) table
/// frame lands in set i/8. Code uses vpn1 = 8 (set 1) and vpn0 = 16
/// (set 2); the root PTEs stay in set 0; data (below) uses sets 32/3.
pub const USER_CODE_VA: u64 = (8 << 21) | (16 << 12);

/// Virtual top of the initial user stack (grows down).
pub const USER_STACK_TOP: u64 = 0x3000_0000;

/// Pages mapped for the initial user stack.
pub const USER_STACK_PAGES: u64 = 4;

/// Virtual base of the relay-segment window. The kernel never creates
/// page-table mappings in this window, so seg-reg translations can never
/// be shadowed and no TLB shootdown is ever needed (§3.3). Kept below
/// 2^31 so generated guest code can load these addresses in two
/// instructions.
pub const RELAY_REGION_VA: u64 = 0x7000_0000;

/// Size of the relay-segment virtual window.
pub const RELAY_REGION_LEN: u64 = 0x1000_0000;

/// Virtual base for per-process scratch data pages (vpn1 = 0x100 ->
/// set 32, vpn0 = 24 -> set 3; see [`USER_CODE_VA`] on coloring).
pub const USER_DATA_VA: u64 = 0x2001_8000;

/// Bytes of a per-thread capability bitmap (§4.1: 128 B = 1024 bits).
pub const CAP_BITMAP_BYTES: u64 = 128;

/// Per-address-space seg-list page size (§4.1: one 4 KiB page).
pub const SEG_LIST_BYTES: u64 = 4096;

/// Slots in a seg-list page (32-byte descriptors).
pub const SEG_LIST_SLOTS: u64 = SEG_LIST_BYTES / 32;

/// Bytes of a per-invocation C-stack.
pub const C_STACK_BYTES: u64 = 4096;

// Layout invariants, enforced at compile time.
const _: () = assert!(XENTRY_TABLE_PA + XENTRY_TABLE_ENTRIES * 32 <= PALLOC_BASE);
const _: () = assert!(USER_CODE_VA < RELAY_REGION_VA);
const _: () = assert!(USER_STACK_TOP < RELAY_REGION_VA);
const _: () = assert!(USER_DATA_VA < RELAY_REGION_VA);
// Keep relay addresses li-friendly (two-instruction loads).
const _: () = assert!(RELAY_REGION_VA + RELAY_REGION_LEN <= 1 << 31);
const _: () = assert!(SEG_LIST_SLOTS == 128);
