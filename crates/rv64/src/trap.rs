//! Trap causes and the [`Trap`] type carried through the execution pipeline.

use std::fmt;

/// Architectural exception causes.
///
/// The first group is the standard RISC-V privileged causes; the second
/// group (24..=28) is the custom range used by the XPC engine for its five
/// new exceptions (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Instruction address misaligned (cause 0).
    InstAddrMisaligned,
    /// Instruction access fault (cause 1).
    InstAccessFault,
    /// Illegal instruction (cause 2).
    IllegalInst,
    /// Breakpoint / `ebreak` (cause 3).
    Breakpoint,
    /// Load address misaligned (cause 4).
    LoadAddrMisaligned,
    /// Load access fault (cause 5).
    LoadAccessFault,
    /// Store address misaligned (cause 6).
    StoreAddrMisaligned,
    /// Store access fault (cause 7).
    StoreAccessFault,
    /// Environment call from U-mode (cause 8).
    EcallFromU,
    /// Environment call from S-mode (cause 9).
    EcallFromS,
    /// Environment call from M-mode (cause 11).
    EcallFromM,
    /// Instruction page fault (cause 12).
    InstPageFault,
    /// Load page fault (cause 13).
    LoadPageFault,
    /// Store page fault (cause 15).
    StorePageFault,
    /// XPC: `xcall` on an invalid x-entry (custom cause 24).
    InvalidXEntry,
    /// XPC: `xcall` without the xcall capability (custom cause 25).
    InvalidXcallCap,
    /// XPC: `xret` to an invalid linkage record (custom cause 26).
    InvalidLinkage,
    /// XPC: `swapseg` of an invalid seg-list entry (custom cause 27).
    SwapsegError,
    /// XPC: seg-mask written outside the current seg-reg (custom cause 28).
    InvalidSegMask,
}

impl Cause {
    /// Encoded `mcause`/`scause` value.
    pub fn code(self) -> u64 {
        match self {
            Cause::InstAddrMisaligned => 0,
            Cause::InstAccessFault => 1,
            Cause::IllegalInst => 2,
            Cause::Breakpoint => 3,
            Cause::LoadAddrMisaligned => 4,
            Cause::LoadAccessFault => 5,
            Cause::StoreAddrMisaligned => 6,
            Cause::StoreAccessFault => 7,
            Cause::EcallFromU => 8,
            Cause::EcallFromS => 9,
            Cause::EcallFromM => 11,
            Cause::InstPageFault => 12,
            Cause::LoadPageFault => 13,
            Cause::StorePageFault => 15,
            Cause::InvalidXEntry => 24,
            Cause::InvalidXcallCap => 25,
            Cause::InvalidLinkage => 26,
            Cause::SwapsegError => 27,
            Cause::InvalidSegMask => 28,
        }
    }

    /// Decode an `mcause` value back to a [`Cause`], if known.
    pub fn from_code(code: u64) -> Option<Cause> {
        Some(match code {
            0 => Cause::InstAddrMisaligned,
            1 => Cause::InstAccessFault,
            2 => Cause::IllegalInst,
            3 => Cause::Breakpoint,
            4 => Cause::LoadAddrMisaligned,
            5 => Cause::LoadAccessFault,
            6 => Cause::StoreAddrMisaligned,
            7 => Cause::StoreAccessFault,
            8 => Cause::EcallFromU,
            9 => Cause::EcallFromS,
            11 => Cause::EcallFromM,
            12 => Cause::InstPageFault,
            13 => Cause::LoadPageFault,
            15 => Cause::StorePageFault,
            24 => Cause::InvalidXEntry,
            25 => Cause::InvalidXcallCap,
            26 => Cause::InvalidLinkage,
            27 => Cause::SwapsegError,
            28 => Cause::InvalidSegMask,
            _ => return None,
        })
    }

    /// Whether this is one of the five XPC-specific exceptions.
    pub fn is_xpc(self) -> bool {
        matches!(
            self,
            Cause::InvalidXEntry
                | Cause::InvalidXcallCap
                | Cause::InvalidLinkage
                | Cause::SwapsegError
                | Cause::InvalidSegMask
        )
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cause::InstAddrMisaligned => "instruction address misaligned",
            Cause::InstAccessFault => "instruction access fault",
            Cause::IllegalInst => "illegal instruction",
            Cause::Breakpoint => "breakpoint",
            Cause::LoadAddrMisaligned => "load address misaligned",
            Cause::LoadAccessFault => "load access fault",
            Cause::StoreAddrMisaligned => "store address misaligned",
            Cause::StoreAccessFault => "store access fault",
            Cause::EcallFromU => "environment call from U-mode",
            Cause::EcallFromS => "environment call from S-mode",
            Cause::EcallFromM => "environment call from M-mode",
            Cause::InstPageFault => "instruction page fault",
            Cause::LoadPageFault => "load page fault",
            Cause::StorePageFault => "store page fault",
            Cause::InvalidXEntry => "invalid x-entry",
            Cause::InvalidXcallCap => "invalid xcall-cap",
            Cause::InvalidLinkage => "invalid linkage",
            Cause::SwapsegError => "swapseg error",
            Cause::InvalidSegMask => "invalid seg-mask",
        };
        f.write_str(s)
    }
}

/// A trap: cause plus the faulting value for `mtval`/`stval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// Why the trap happened.
    pub cause: Cause,
    /// Trap value (faulting address or instruction bits).
    pub tval: u64,
}

impl Trap {
    /// Construct a trap with a trap value.
    pub fn new(cause: Cause, tval: u64) -> Self {
        Trap { cause, tval }
    }

    /// Construct a trap with a zero trap value.
    pub fn bare(cause: Cause) -> Self {
        Trap { cause, tval: 0 }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (tval={:#x})", self.cause, self.tval)
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..32 {
            if let Some(c) = Cause::from_code(code) {
                assert_eq!(c.code(), code);
            }
        }
    }

    #[test]
    fn xpc_causes_are_custom_range() {
        for c in [
            Cause::InvalidXEntry,
            Cause::InvalidXcallCap,
            Cause::InvalidLinkage,
            Cause::SwapsegError,
            Cause::InvalidSegMask,
        ] {
            assert!(c.is_xpc());
            assert!(c.code() >= 24, "custom causes live at 24+");
        }
        assert!(!Cause::IllegalInst.is_xpc());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Trap::bare(Cause::Breakpoint).to_string().is_empty());
    }
}
