//! The ISA-extension hook through which the XPC engine plugs into the core.
//!
//! The paper adds the XPC engine "as a unit of a RocketChip core" (§4.1):
//! new instructions are dispatched to it at Execute, new CSRs appear in the
//! CSR file, and the relay segment extends the TLB. This trait is the
//! software analogue: the machine offers undecoded instruction words and
//! unknown CSR addresses to the extension, which manipulates the [`Core`]
//! (registers, memory, MMU seg window, cycle charge) directly.

use crate::machine::Core;
use crate::trap::Trap;

/// What an extension did with an offered instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtResult {
    /// Not an instruction of this extension; the core raises illegal-inst.
    NotClaimed,
    /// Executed; the extension already set the next PC and charged cycles.
    Done,
    /// Executed and trapped (e.g. invalid x-entry).
    Trapped(Trap),
}

/// An ISA extension plugged into a [`crate::Machine`].
pub trait IsaExtension {
    /// Extension name for traces.
    fn name(&self) -> &'static str;

    /// Downcast hook so host-side control planes (the `xpc` kernel model)
    /// can reach the concrete engine behind the trait object.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Offer an instruction word that the base decoder did not claim.
    /// On `Done`, the extension must have advanced `core.cpu.pc` itself.
    fn execute(&mut self, raw: u32, core: &mut Core) -> ExtResult;

    /// Read a CSR the base file does not implement. `None` = not mine.
    fn csr_read(&mut self, addr: u16, core: &mut Core) -> Option<Result<u64, Trap>>;

    /// Write a CSR the base file does not implement. `None` = not mine.
    fn csr_write(&mut self, addr: u16, value: u64, core: &mut Core) -> Option<Result<(), Trap>>;

    /// Called after the kernel context-switches address spaces (satp write),
    /// letting the extension invalidate address-space-derived state.
    fn on_satp_write(&mut self, _core: &mut Core) {}
}

/// A no-op extension for machines without XPC (the baseline platform).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullExtension;

impl IsaExtension for NullExtension {
    fn name(&self) -> &'static str {
        "null"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn execute(&mut self, _raw: u32, _core: &mut Core) -> ExtResult {
        ExtResult::NotClaimed
    }

    fn csr_read(&mut self, _addr: u16, _core: &mut Core) -> Option<Result<u64, Trap>> {
        None
    }

    fn csr_write(&mut self, _addr: u16, _value: u64, _core: &mut Core) -> Option<Result<(), Trap>> {
        None
    }
}
