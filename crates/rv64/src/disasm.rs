//! Disassembler for traces and debugging: renders any instruction this
//! machine decodes (plus the XPC custom-0 space) in standard assembly
//! syntax.
//!
//! ```
//! use rv64::disasm::disasm;
//! // addi a0, a0, 1
//! assert_eq!(disasm(0x00150513), "addi a0, a0, 1");
//! ```

use crate::inst::{
    decode, AluOp, AmoOp, BranchOp, CsrOp, CsrSrc, Inst, LoadOp, StoreOp, OPCODE_CUSTOM0,
};
use crate::reg;

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhsu => "mulhsu",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn amo_name(op: AmoOp) -> &'static str {
    match op {
        AmoOp::Swap => "amoswap",
        AmoOp::Add => "amoadd",
        AmoOp::Xor => "amoxor",
        AmoOp::And => "amoand",
        AmoOp::Or => "amoor",
        AmoOp::Min => "amomin",
        AmoOp::Max => "amomax",
        AmoOp::Minu => "amominu",
        AmoOp::Maxu => "amomaxu",
    }
}

/// Render one instruction word.
pub fn disasm(raw: u32) -> String {
    if raw & 0x7f == OPCODE_CUSTOM0 {
        let rs1 = reg::name(((raw >> 15) & 31) as u8);
        return match (raw >> 12) & 7 {
            0 => format!("xcall {rs1}"),
            1 => "xret".to_string(),
            2 => format!("swapseg {rs1}"),
            _ => format!(".insn 0x{raw:08x} (custom-0)"),
        };
    }
    let Some(i) = decode(raw) else {
        return format!(".insn 0x{raw:08x}");
    };
    render(i)
}

/// Render a decoded instruction.
pub fn render(i: Inst) -> String {
    let r = reg::name;
    match i {
        Inst::Lui { rd, imm } => format!("lui {}, {:#x}", r(rd), (imm as u64 >> 12) & 0xfffff),
        Inst::Auipc { rd, imm } => {
            format!("auipc {}, {:#x}", r(rd), (imm as u64 >> 12) & 0xfffff)
        }
        Inst::Jal { rd, imm } => {
            if rd == 0 {
                format!("j {imm}")
            } else {
                format!("jal {}, {imm}", r(rd))
            }
        }
        Inst::Jalr { rd, rs1, imm } => {
            if rd == 0 && rs1 == reg::RA && imm == 0 {
                "ret".to_string()
            } else {
                format!("jalr {}, {imm}({})", r(rd), r(rs1))
            }
        }
        Inst::Branch { op, rs1, rs2, imm } => {
            let n = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            format!("{n} {}, {}, {imm}", r(rs1), r(rs2))
        }
        Inst::Load { op, rd, rs1, imm } => {
            let n = match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Ld => "ld",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
                LoadOp::Lwu => "lwu",
            };
            format!("{n} {}, {imm}({})", r(rd), r(rs1))
        }
        Inst::Store { op, rs1, rs2, imm } => {
            let n = match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
                StoreOp::Sd => "sd",
            };
            format!("{n} {}, {imm}({})", r(rs2), r(rs1))
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            if op == AluOp::Add && rs1 == 0 {
                return format!("li {}, {imm}", r(rd));
            }
            if op == AluOp::Add && imm == 0 {
                return format!("mv {}, {}", r(rd), r(rs1));
            }
            let n = match op {
                AluOp::Sll => "slli",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Add => "addi",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                _ => "op?i",
            };
            format!("{n} {}, {}, {imm}", r(rd), r(rs1))
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            let n = match op {
                AluOp::Add => "addiw",
                AluOp::Sll => "slliw",
                AluOp::Srl => "srliw",
                AluOp::Sra => "sraiw",
                _ => "op?iw",
            };
            format!("{n} {}, {}, {imm}", r(rd), r(rs1))
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            format!("{} {}, {}, {}", alu_name(op), r(rd), r(rs1), r(rs2))
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            format!("{}w {}, {}, {}", alu_name(op), r(rd), r(rs1), r(rs2))
        }
        Inst::Fence => "fence".to_string(),
        Inst::FenceI => "fence.i".to_string(),
        Inst::Ecall => "ecall".to_string(),
        Inst::Ebreak => "ebreak".to_string(),
        Inst::Mret => "mret".to_string(),
        Inst::Sret => "sret".to_string(),
        Inst::Wfi => "wfi".to_string(),
        Inst::SfenceVma { rs1, rs2 } => format!("sfence.vma {}, {}", r(rs1), r(rs2)),
        Inst::Csr { op, rd, csr, src } => {
            let (n, s) = match (op, src) {
                (CsrOp::Rw, CsrSrc::Reg(v)) => ("csrrw", r(v).to_string()),
                (CsrOp::Rs, CsrSrc::Reg(v)) => ("csrrs", r(v).to_string()),
                (CsrOp::Rc, CsrSrc::Reg(v)) => ("csrrc", r(v).to_string()),
                (CsrOp::Rw, CsrSrc::Imm(v)) => ("csrrwi", v.to_string()),
                (CsrOp::Rs, CsrSrc::Imm(v)) => ("csrrsi", v.to_string()),
                (CsrOp::Rc, CsrSrc::Imm(v)) => ("csrrci", v.to_string()),
            };
            format!("{n} {}, {csr:#x}, {s}", r(rd))
        }
        Inst::Lr { rd, rs1, word } => {
            format!(
                "lr.{} {}, ({})",
                if word { "w" } else { "d" },
                r(rd),
                r(rs1)
            )
        }
        Inst::Sc { rd, rs1, rs2, word } => format!(
            "sc.{} {}, {}, ({})",
            if word { "w" } else { "d" },
            r(rd),
            r(rs2),
            r(rs1)
        ),
        Inst::Amo {
            op,
            rd,
            rs1,
            rs2,
            word,
        } => format!(
            "{}.{} {}, {}, ({})",
            amo_name(op),
            if word { "w" } else { "d" },
            r(rd),
            r(rs2),
            r(rs1)
        ),
    }
}

/// Disassemble a whole program with addresses (one line per word).
pub fn disasm_program(base: u64, words: &[u32]) -> String {
    words
        .iter()
        .enumerate()
        .map(|(i, w)| format!("{:#010x}: {}", base + 4 * i as u64, disasm(*w)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;

    #[test]
    fn common_instructions_round_trip() {
        let mut a = Assembler::new(0);
        a.addi(reg::A0, reg::A0, 1);
        a.ld(reg::T0, reg::SP, -16);
        a.sd(reg::T1, reg::A1, 8);
        a.ebreak();
        a.amoswap_d(reg::T5, reg::T5, reg::T4);
        let w = a.assemble();
        assert_eq!(disasm(w[0]), "addi a0, a0, 1");
        assert_eq!(disasm(w[1]), "ld t0, -16(sp)");
        assert_eq!(disasm(w[2]), "sd t1, 8(a1)");
        assert_eq!(disasm(w[3]), "ebreak");
        assert_eq!(disasm(w[4]), "amoswap.d t5, t5, (t4)");
    }

    #[test]
    fn pseudo_forms_render() {
        let mut a = Assembler::new(0);
        a.li(reg::A0, 5);
        a.mv(reg::A1, reg::A0);
        a.ret();
        let w = a.assemble();
        assert_eq!(disasm(w[0]), "li a0, 5");
        assert_eq!(disasm(w[1]), "mv a1, a0");
        assert_eq!(disasm(w[2]), "ret");
    }

    #[test]
    fn custom0_renders_xpc_names() {
        // These encodings mirror xpc-engine's asm_ext (kept in sync by the
        // funct3 assignments documented there).
        assert_eq!(disasm(0b000_1011 | (10 << 15)), "xcall a0");
        assert_eq!(disasm(0b000_1011 | (1 << 12)), "xret");
        assert_eq!(disasm(0b000_1011 | (2 << 12) | (11 << 15)), "swapseg a1");
    }

    #[test]
    fn unknown_renders_as_raw() {
        assert!(disasm(0xffff_ffff).starts_with(".insn"));
    }

    #[test]
    fn program_listing_has_addresses() {
        let mut a = Assembler::new(0x1000);
        a.nop();
        a.ebreak();
        let listing = disasm_program(0x1000, &a.assemble());
        assert!(listing.contains("0x00001000:"));
        assert!(listing.contains("0x00001004: ebreak"));
    }
}
