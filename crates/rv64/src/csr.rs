//! Control and status registers: addresses, `mstatus` bit helpers, and the
//! CSR file with the architectural access rules needed by the reproduction.

use crate::cpu::Mode;
use crate::trap::{Cause, Trap};

/// `mstatus` / `sstatus` bit positions used by the machine.
pub mod mstatus {
    /// Supervisor interrupt enable.
    pub const SIE: u64 = 1 << 1;
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Supervisor previous interrupt enable.
    pub const SPIE: u64 = 1 << 5;
    /// Machine previous interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Supervisor previous privilege (1 bit).
    pub const SPP: u64 = 1 << 8;
    /// Machine previous privilege (2 bits at 11..=12).
    pub const MPP_SHIFT: u64 = 11;
    /// MPP mask.
    pub const MPP_MASK: u64 = 0b11 << MPP_SHIFT;
    /// Permit supervisor user-memory access.
    pub const SUM: u64 = 1 << 18;
    /// Make executable readable.
    pub const MXR: u64 = 1 << 19;
}

/// Standard CSR addresses (the subset this machine implements).
pub mod addr {
    pub const SSTATUS: u16 = 0x100;
    pub const SIE: u16 = 0x104;
    pub const STVEC: u16 = 0x105;
    pub const SSCRATCH: u16 = 0x140;
    pub const SEPC: u16 = 0x141;
    pub const SCAUSE: u16 = 0x142;
    pub const STVAL: u16 = 0x143;
    pub const SIP: u16 = 0x144;
    pub const SATP: u16 = 0x180;
    pub const MSTATUS: u16 = 0x300;
    pub const MISA: u16 = 0x301;
    pub const MEDELEG: u16 = 0x302;
    pub const MIDELEG: u16 = 0x303;
    pub const MIE: u16 = 0x304;
    pub const MTVEC: u16 = 0x305;
    pub const MSCRATCH: u16 = 0x340;
    pub const MEPC: u16 = 0x341;
    pub const MCAUSE: u16 = 0x342;
    pub const MTVAL: u16 = 0x343;
    pub const MIP: u16 = 0x344;
    /// Custom M-mode timer-compare CSR. The spec puts mtimecmp in CLINT
    /// MMIO; this machine exposes it as a CSR to keep the memory map
    /// simple (documented deviation). 0 disables the timer.
    pub const MTIMECMP: u16 = 0x7c0;
    pub const CYCLE: u16 = 0xc00;
    pub const TIME: u16 = 0xc01;
    pub const INSTRET: u16 = 0xc02;
    pub const MHARTID: u16 = 0xf14;
}

/// Bits of `mstatus` visible through the `sstatus` shadow.
const SSTATUS_MASK: u64 = mstatus::SIE | mstatus::SPIE | mstatus::SPP | mstatus::SUM | mstatus::MXR;

/// The CSR file.
///
/// Custom (XPC) CSRs are not stored here; the machine routes unknown
/// addresses to the active [`crate::ext::IsaExtension`].
#[derive(Debug, Clone, Default)]
pub struct CsrFile {
    pub mstatus: u64,
    /// Timer compare value (cycles); 0 = timer disabled.
    pub mtimecmp: u64,
    pub medeleg: u64,
    pub mideleg: u64,
    pub mie: u64,
    pub mip: u64,
    pub mtvec: u64,
    pub mscratch: u64,
    pub mepc: u64,
    pub mcause: u64,
    pub mtval: u64,
    pub stvec: u64,
    pub sscratch: u64,
    pub sepc: u64,
    pub scause: u64,
    pub stval: u64,
    pub satp: u64,
}

impl CsrFile {
    /// A freshly reset CSR file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimum privilege required to touch a CSR address (bits 9:8).
    fn required_mode(addr: u16) -> Mode {
        match (addr >> 8) & 0b11 {
            0b00 => Mode::User,
            0b01 => Mode::Supervisor,
            _ => Mode::Machine,
        }
    }

    /// Whether the CSR is read-only (top two address bits == 0b11).
    fn read_only(addr: u16) -> bool {
        (addr >> 10) & 0b11 == 0b11
    }

    /// Read a standard CSR. Returns `None` for addresses this file does not
    /// implement (candidates for extension CSRs).
    ///
    /// # Errors
    ///
    /// Illegal-instruction trap on insufficient privilege.
    pub fn read(
        &self,
        addr: u16,
        mode: Mode,
        cycle: u64,
        instret: u64,
    ) -> Option<Result<u64, Trap>> {
        if mode < Self::required_mode(addr) {
            return Some(Err(Trap::new(Cause::IllegalInst, addr as u64)));
        }
        let v = match addr {
            addr::MSTATUS => self.mstatus,
            addr::MISA => (2 << 62) | (1 << 8) | (1 << 12) | (1 << 18) | (1 << 20), // RV64 I M S U
            addr::MEDELEG => self.medeleg,
            addr::MIDELEG => self.mideleg,
            addr::MIE => self.mie,
            addr::MIP => self.mip,
            addr::MTVEC => self.mtvec,
            addr::MSCRATCH => self.mscratch,
            addr::MEPC => self.mepc,
            addr::MCAUSE => self.mcause,
            addr::MTVAL => self.mtval,
            addr::MTIMECMP => self.mtimecmp,
            addr::SSTATUS => self.mstatus & SSTATUS_MASK,
            addr::SIE => self.mie & self.mideleg,
            addr::SIP => self.mip & self.mideleg,
            addr::STVEC => self.stvec,
            addr::SSCRATCH => self.sscratch,
            addr::SEPC => self.sepc,
            addr::SCAUSE => self.scause,
            addr::STVAL => self.stval,
            addr::SATP => self.satp,
            addr::CYCLE | addr::TIME => cycle,
            addr::INSTRET => instret,
            addr::MHARTID => 0,
            _ => return None,
        };
        Some(Ok(v))
    }

    /// Write a standard CSR. Returns `None` for unimplemented addresses,
    /// `Some(Ok(satp_written))` on success so the machine can flush TLBs.
    ///
    /// # Errors
    ///
    /// Illegal-instruction trap on insufficient privilege or read-only CSRs.
    pub fn write(&mut self, addr: u16, value: u64, mode: Mode) -> Option<Result<bool, Trap>> {
        if mode < Self::required_mode(addr) || Self::read_only(addr) {
            return Some(Err(Trap::new(Cause::IllegalInst, addr as u64)));
        }
        match addr {
            addr::MSTATUS => self.mstatus = value,
            addr::MEDELEG => self.medeleg = value,
            addr::MIDELEG => self.mideleg = value,
            addr::MIE => self.mie = value,
            addr::MIP => self.mip = value,
            addr::MTVEC => self.mtvec = value,
            addr::MSCRATCH => self.mscratch = value,
            addr::MEPC => self.mepc = value & !1,
            addr::MCAUSE => self.mcause = value,
            addr::MTVAL => self.mtval = value,
            addr::MTIMECMP => self.mtimecmp = value,
            addr::SSTATUS => self.mstatus = (self.mstatus & !SSTATUS_MASK) | (value & SSTATUS_MASK),
            addr::SIE => {
                let d = self.mideleg;
                self.mie = (self.mie & !d) | (value & d);
            }
            addr::SIP => {
                let d = self.mideleg;
                self.mip = (self.mip & !d) | (value & d);
            }
            addr::STVEC => self.stvec = value,
            addr::SSCRATCH => self.sscratch = value,
            addr::SEPC => self.sepc = value & !1,
            addr::SCAUSE => self.scause = value,
            addr::STVAL => self.stval = value,
            addr::MISA => {}
            addr::SATP => {
                self.satp = value;
                return Some(Ok(true));
            }
            _ => return None,
        }
        Some(Ok(false))
    }

    /// `mstatus.SUM`.
    pub fn sum(&self) -> bool {
        self.mstatus & mstatus::SUM != 0
    }

    /// `mstatus.MXR`.
    pub fn mxr(&self) -> bool {
        self.mstatus & mstatus::MXR != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_enforced() {
        let mut f = CsrFile::new();
        assert!(matches!(
            f.read(addr::MSTATUS, Mode::User, 0, 0),
            Some(Err(_))
        ));
        assert!(matches!(f.write(addr::SATP, 0, Mode::User), Some(Err(_))));
        assert!(matches!(
            f.write(addr::SATP, 0, Mode::Supervisor),
            Some(Ok(true))
        ));
    }

    #[test]
    fn read_only_counters() {
        let mut f = CsrFile::new();
        assert_eq!(f.read(addr::CYCLE, Mode::User, 77, 5).unwrap().unwrap(), 77);
        assert_eq!(
            f.read(addr::INSTRET, Mode::User, 77, 5).unwrap().unwrap(),
            5
        );
        assert!(matches!(
            f.write(addr::CYCLE, 0, Mode::Machine),
            Some(Err(_))
        ));
    }

    #[test]
    fn sstatus_is_a_shadow() {
        let mut f = CsrFile::new();
        f.write(addr::MSTATUS, mstatus::SUM | mstatus::MIE, Mode::Machine)
            .unwrap()
            .unwrap();
        let s = f
            .read(addr::SSTATUS, Mode::Supervisor, 0, 0)
            .unwrap()
            .unwrap();
        assert_eq!(s & mstatus::SUM, mstatus::SUM);
        assert_eq!(s & mstatus::MIE, 0, "M-only bits hidden from sstatus");
    }

    #[test]
    fn unknown_addr_returns_none() {
        let f = CsrFile::new();
        assert!(f.read(0x5c0, Mode::Machine, 0, 0).is_none());
    }

    #[test]
    fn epc_forced_aligned() {
        let mut f = CsrFile::new();
        f.write(addr::MEPC, 0x1001, Mode::Machine).unwrap().unwrap();
        assert_eq!(f.mepc, 0x1000);
    }
}
