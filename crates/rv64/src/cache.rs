//! Set-associative cache *timing* model.
//!
//! The emulator keeps data in flat [`crate::Memory`]; the cache tracks only
//! tags and LRU state so each access can be priced as hit or miss. This is
//! the standard decoupled functional/timing split and is all the paper's
//! cycle numbers need: IPC costs there are dominated by whether the x-entry,
//! capability bitmap, link stack and message bytes hit in the D-cache.

use crate::config::CacheConfig;

/// One cache way: tag + LRU stamp.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of a cache access, with the cycles it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// True if the line was resident.
    pub hit: bool,
    /// Cycles charged for this access (hit_extra or miss_penalty).
    pub cycles: u64,
}

/// Set-associative cache timing model with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stamp: u64,
    /// Total hits observed.
    pub hits: u64,
    /// Total misses observed.
    pub misses: u64,
    /// Address of the most recent miss (debug/trace aid).
    pub last_miss_pa: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache for `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            lines: vec![Line::default(); cfg.sets * cfg.ways],
            cfg,
            stamp: 0,
            hits: 0,
            misses: 0,
            last_miss_pa: 0,
        }
    }

    fn set_index(&self, pa: u64) -> usize {
        ((pa as usize) / self.cfg.line_bytes) & (self.cfg.sets - 1)
    }

    fn tag(&self, pa: u64) -> u64 {
        pa / (self.cfg.line_bytes * self.cfg.sets) as u64
    }

    /// Access `pa`; fills the line on miss and returns the priced outcome.
    pub fn access(&mut self, pa: u64) -> CacheAccess {
        self.stamp += 1;
        let set = self.set_index(pa);
        let tag = self.tag(pa);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            self.hits += 1;
            return CacheAccess {
                hit: true,
                cycles: self.cfg.hit_extra,
            };
        }
        // Miss: fill into LRU (or first invalid) way.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.stamp;
        self.misses += 1;
        self.last_miss_pa = pa;
        CacheAccess {
            hit: false,
            cycles: self.cfg.miss_penalty,
        }
    }

    /// Pre-load the line holding `pa` without charging cycles (used to model
    /// a warm cache at benchmark start).
    pub fn warm(&mut self, pa: u64) {
        let _ = self.access(pa);
        self.hits = 0;
        self.misses = 0;
    }

    /// Fill the line holding `pa` without charging cycles or counting
    /// statistics — models a buffered store draining into the cache off
    /// the critical path (the non-blocking link stack of XPC §3.2).
    pub fn touch(&mut self, pa: u64) {
        let (h, m) = (self.hits, self.misses);
        let _ = self.access(pa);
        self.hits = h;
        self.misses = m;
    }

    /// Invalidate everything (e.g. to model a cold start).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
            hit_extra: 1,
            miss_penalty: 20,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x8000_0000).hit);
        assert!(c.access(0x8000_0000).hit);
        assert!(c.access(0x8000_003f).hit, "same 64B line");
        assert!(!c.access(0x8000_0040).hit, "next line");
    }

    #[test]
    fn miss_and_hit_cost_differ() {
        let mut c = tiny();
        assert_eq!(c.access(0x8000_0000).cycles, 20);
        assert_eq!(c.access(0x8000_0000).cycles, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = line*sets = 128).
        c.access(0x8000_0000);
        c.access(0x8000_0080);
        c.access(0x8000_0000); // refresh first
        c.access(0x8000_0100); // evicts 0x...080
        assert!(c.access(0x8000_0000).hit);
        assert!(!c.access(0x8000_0080).hit, "was LRU victim");
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x8000_0000);
        c.flush();
        assert!(!c.access(0x8000_0000).hit);
    }

    #[test]
    fn warm_does_not_count() {
        let mut c = tiny();
        c.warm(0x8000_0000);
        assert_eq!(c.misses, 0);
        assert!(c.access(0x8000_0000).hit);
    }
}
