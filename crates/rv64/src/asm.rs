//! A small RV64 assembler for building guest programs in tests, examples
//! and benchmarks.
//!
//! Supports forward references through string labels, the usual pseudo
//! instructions (`li`, `mv`, `j`, `ret`, `csrr`/`csrw`, ...) and raw word
//! emission for extension instructions (the XPC engine exposes its
//! `xcall`/`xret`/`swapseg` encoders on top of [`Assembler::raw`]).
//!
//! # Example
//!
//! ```
//! use rv64::{Assembler, reg};
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(reg::A0, 10);
//! a.label("loop");
//! a.addi(reg::A0, reg::A0, -1);
//! a.bne(reg::A0, reg::ZERO, "loop");
//! a.ebreak();
//! let words = a.assemble();
//! assert_eq!(words.len(), 4);
//! ```

use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum FixKind {
    Branch,
    Jal,
}

/// Incremental assembler; see the [module docs](self).
#[derive(Debug)]
pub struct Assembler {
    base: u64,
    words: Vec<u32>,
    labels: HashMap<String, u64>,
    fixups: Vec<(usize, String, FixKind)>,
}

fn rtype(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn itype(imm: i64, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "I-imm out of range: {imm}");
    (((imm as u32) & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn stype(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "S-imm out of range: {imm}");
    let imm = imm as u32 & 0xfff;
    ((imm >> 5) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 31) << 7)
        | opcode
}

fn btype(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B-imm out of range: {imm}"
    );
    let imm = imm as u32 & 0x1fff;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn utype(imm: i64, rd: u8, opcode: u32) -> u32 {
    ((imm as u32) & 0xffff_f000) | ((rd as u32) << 7) | opcode
}

fn jtype(imm: i64, rd: u8, opcode: u32) -> u32 {
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm out of range: {imm}"
    );
    let imm = imm as u32 & 0x1f_ffff;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | opcode
}

impl Assembler {
    /// Start assembling at virtual/physical address `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            words: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Current emission address.
    pub fn here(&self) -> u64 {
        self.base + 4 * self.words.len() as u64
    }

    /// Base address the program was created with.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Define `name` at the current address.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label definitions.
    pub fn label(&mut self, name: &str) -> u64 {
        let addr = self.here();
        let prev = self.labels.insert(name.to_string(), addr);
        assert!(prev.is_none(), "duplicate label {name}");
        addr
    }

    /// Address of an already-defined label.
    pub fn label_addr(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Emit a raw instruction word (extension encodings).
    pub fn raw(&mut self, word: u32) {
        self.words.push(word);
    }

    /// Resolve fixups and return the instruction words.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never defined.
    pub fn assemble(mut self) -> Vec<u32> {
        for (idx, name, kind) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&name)
                .unwrap_or_else(|| panic!("undefined label {name}"));
            let pc = self.base + 4 * idx as u64;
            let off = target as i64 - pc as i64;
            let old = self.words[idx];
            self.words[idx] = match kind {
                FixKind::Branch => {
                    let rs2 = ((old >> 20) & 31) as u8;
                    let rs1 = ((old >> 15) & 31) as u8;
                    let f3 = (old >> 12) & 7;
                    btype(off, rs2, rs1, f3, 0b110_0011)
                }
                FixKind::Jal => {
                    let rd = ((old >> 7) & 31) as u8;
                    jtype(off, rd, 0b110_1111)
                }
            };
        }
        self.words
    }

    // ---- U/J types ----

    /// `lui rd, imm` (imm is the full 32-bit value whose low 12 bits are 0).
    pub fn lui(&mut self, rd: u8, imm: i64) {
        self.raw(utype(imm, rd, 0b011_0111));
    }

    /// `auipc rd, imm`.
    pub fn auipc(&mut self, rd: u8, imm: i64) {
        self.raw(utype(imm, rd, 0b001_0111));
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, label: &str) {
        self.fixups
            .push((self.words.len(), label.to_string(), FixKind::Jal));
        self.raw(jtype(0, rd, 0b110_1111));
    }

    /// `j label` (pseudo).
    pub fn j(&mut self, label: &str) {
        self.jal(0, label);
    }

    /// `call label` (pseudo: `jal ra, label`).
    pub fn call(&mut self, label: &str) {
        self.jal(1, label);
    }

    /// `jalr rd, imm(rs1)`.
    pub fn jalr(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 0, rd, 0b110_0111));
    }

    /// `ret` (pseudo: `jalr zero, 0(ra)`).
    pub fn ret(&mut self) {
        self.jalr(0, 1, 0);
    }

    // ---- branches ----

    fn branch(&mut self, f3: u32, rs1: u8, rs2: u8, label: &str) {
        self.fixups
            .push((self.words.len(), label.to_string(), FixKind::Branch));
        self.raw(btype(0, rs2, rs1, f3, 0b110_0011));
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0, rs1, rs2, label);
    }
    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(1, rs1, rs2, label);
    }
    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(4, rs1, rs2, label);
    }
    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(5, rs1, rs2, label);
    }
    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(6, rs1, rs2, label);
    }
    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(7, rs1, rs2, label);
    }

    // ---- loads/stores ----

    /// `lb rd, imm(rs1)`.
    pub fn lb(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 0, rd, 0b000_0011));
    }
    /// `lh rd, imm(rs1)`.
    pub fn lh(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 1, rd, 0b000_0011));
    }
    /// `lw rd, imm(rs1)`.
    pub fn lw(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 2, rd, 0b000_0011));
    }
    /// `ld rd, imm(rs1)`.
    pub fn ld(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 3, rd, 0b000_0011));
    }
    /// `lbu rd, imm(rs1)`.
    pub fn lbu(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 4, rd, 0b000_0011));
    }
    /// `lhu rd, imm(rs1)`.
    pub fn lhu(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 5, rd, 0b000_0011));
    }
    /// `lwu rd, imm(rs1)`.
    pub fn lwu(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 6, rd, 0b000_0011));
    }
    /// `sb rs2, imm(rs1)`.
    pub fn sb(&mut self, rs2: u8, rs1: u8, imm: i64) {
        self.raw(stype(imm, rs2, rs1, 0, 0b010_0011));
    }
    /// `sh rs2, imm(rs1)`.
    pub fn sh(&mut self, rs2: u8, rs1: u8, imm: i64) {
        self.raw(stype(imm, rs2, rs1, 1, 0b010_0011));
    }
    /// `sw rs2, imm(rs1)`.
    pub fn sw(&mut self, rs2: u8, rs1: u8, imm: i64) {
        self.raw(stype(imm, rs2, rs1, 2, 0b010_0011));
    }
    /// `sd rs2, imm(rs1)`.
    pub fn sd(&mut self, rs2: u8, rs1: u8, imm: i64) {
        self.raw(stype(imm, rs2, rs1, 3, 0b010_0011));
    }

    // ---- ALU immediate ----

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 0, rd, 0b001_0011));
    }
    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 2, rd, 0b001_0011));
    }
    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 3, rd, 0b001_0011));
    }
    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 4, rd, 0b001_0011));
    }
    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 6, rd, 0b001_0011));
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 7, rd, 0b001_0011));
    }
    /// `slli rd, rs1, shamt` (0..=63).
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 64);
        self.raw(itype(shamt as i64, rs1, 1, rd, 0b001_0011));
    }
    /// `srli rd, rs1, shamt` (0..=63).
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 64);
        self.raw(itype(shamt as i64, rs1, 5, rd, 0b001_0011));
    }
    /// `srai rd, rs1, shamt` (0..=63).
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 64);
        self.raw(itype(shamt as i64 | 0x400, rs1, 5, rd, 0b001_0011));
    }
    /// `addiw rd, rs1, imm`.
    pub fn addiw(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.raw(itype(imm, rs1, 0, rd, 0b001_1011));
    }

    // ---- ALU register ----

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 0, rd, 0b011_0011));
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0b010_0000, rs2, rs1, 0, rd, 0b011_0011));
    }
    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 1, rd, 0b011_0011));
    }
    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 2, rd, 0b011_0011));
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 3, rd, 0b011_0011));
    }
    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 4, rd, 0b011_0011));
    }
    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 5, rd, 0b011_0011));
    }
    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0b010_0000, rs2, rs1, 5, rd, 0b011_0011));
    }
    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 6, rd, 0b011_0011));
    }
    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(0, rs2, rs1, 7, rd, 0b011_0011));
    }
    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(1, rs2, rs1, 0, rd, 0b011_0011));
    }
    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(1, rs2, rs1, 5, rd, 0b011_0011));
    }
    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.raw(rtype(1, rs2, rs1, 7, rd, 0b011_0011));
    }

    // ---- RV64A atomics ----

    fn amo_encode(&mut self, funct5: u32, rd: u8, rs1: u8, rs2: u8, word: bool) {
        let f3 = if word { 2 } else { 3 };
        self.raw(
            (funct5 << 27)
                | ((rs2 as u32) << 20)
                | ((rs1 as u32) << 15)
                | (f3 << 12)
                | ((rd as u32) << 7)
                | 0b010_1111,
        );
    }

    /// `lr.d rd, (rs1)`.
    pub fn lr_d(&mut self, rd: u8, rs1: u8) {
        self.amo_encode(0b00010, rd, rs1, 0, false);
    }
    /// `lr.w rd, (rs1)`.
    pub fn lr_w(&mut self, rd: u8, rs1: u8) {
        self.amo_encode(0b00010, rd, rs1, 0, true);
    }
    /// `sc.d rd, rs2, (rs1)`.
    pub fn sc_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b00011, rd, rs1, rs2, false);
    }
    /// `sc.w rd, rs2, (rs1)`.
    pub fn sc_w(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b00011, rd, rs1, rs2, true);
    }
    /// `amoswap.d rd, rs2, (rs1)`.
    pub fn amoswap_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b00001, rd, rs1, rs2, false);
    }
    /// `amoadd.d rd, rs2, (rs1)`.
    pub fn amoadd_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b00000, rd, rs1, rs2, false);
    }
    /// `amoadd.w rd, rs2, (rs1)`.
    pub fn amoadd_w(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b00000, rd, rs1, rs2, true);
    }
    /// `amoor.d rd, rs2, (rs1)`.
    pub fn amoor_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b01000, rd, rs1, rs2, false);
    }
    /// `amoand.d rd, rs2, (rs1)`.
    pub fn amoand_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.amo_encode(0b01100, rd, rs1, rs2, false);
    }

    // ---- system ----

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.raw(0x0000_0073);
    }
    /// `ebreak`.
    pub fn ebreak(&mut self) {
        self.raw(0x0010_0073);
    }
    /// `mret`.
    pub fn mret(&mut self) {
        self.raw(0x3020_0073);
    }
    /// `sret`.
    pub fn sret(&mut self) {
        self.raw(0x1020_0073);
    }
    /// `wfi`.
    pub fn wfi(&mut self) {
        self.raw(0x1050_0073);
    }
    /// `sfence.vma rs1, rs2`.
    pub fn sfence_vma(&mut self, rs1: u8, rs2: u8) {
        self.raw(rtype(0b000_1001, rs2, rs1, 0, 0, 0b111_0011));
    }
    /// `fence`.
    pub fn fence(&mut self) {
        self.raw(0x0ff0_000f);
    }

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.raw(
            ((csr as u32) << 20)
                | ((rs1 as u32) << 15)
                | (1 << 12)
                | ((rd as u32) << 7)
                | 0b111_0011,
        );
    }
    /// `csrrs rd, csr, rs1`.
    pub fn csrrs(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.raw(
            ((csr as u32) << 20)
                | ((rs1 as u32) << 15)
                | (2 << 12)
                | ((rd as u32) << 7)
                | 0b111_0011,
        );
    }
    /// `csrrc rd, csr, rs1`.
    pub fn csrrc(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.raw(
            ((csr as u32) << 20)
                | ((rs1 as u32) << 15)
                | (3 << 12)
                | ((rd as u32) << 7)
                | 0b111_0011,
        );
    }
    /// `csrr rd, csr` (pseudo).
    pub fn csrr(&mut self, rd: u8, csr: u16) {
        self.csrrs(rd, csr, 0);
    }
    /// `csrw csr, rs1` (pseudo).
    pub fn csrw(&mut self, csr: u16, rs1: u8) {
        self.csrrw(0, csr, rs1);
    }

    // ---- pseudos ----

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(0, 0, 0);
    }

    /// `mv rd, rs` (pseudo).
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }

    /// Load an arbitrary 64-bit constant into `rd` (expands to up to 8
    /// instructions; small constants use short forms).
    pub fn li(&mut self, rd: u8, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, 0, value);
            return;
        }
        if value == value as i32 as i64 {
            // lui+addi pair; adjust for addi's sign extension.
            let lo = (value << 52) >> 52; // low 12 bits sign-extended
            let hi = value.wrapping_sub(lo) & 0xffff_f000;
            self.lui(rd, hi as i32 as i64);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        // General 64-bit: classic shift-or expansion. Seed with the signed
        // top 12 bits, then fold in 11-bit chunks (always non-negative, so
        // `ori`'s sign extension never fires) and a final 8-bit chunk:
        // 12 + 11*4 + 8 = 64.
        self.addi(rd, 0, value >> 52);
        for (shift, width) in [(41u8, 11u8), (30, 11), (19, 11), (8, 11), (0, 8)] {
            let chunk = ((value >> shift) as u64 & ((1 << width) - 1)) as i64;
            self.slli(rd, rd, width);
            if chunk != 0 {
                self.ori(rd, rd, chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{decode, AluOp, Inst};

    #[test]
    fn label_fixup_backward_and_forward() {
        let mut a = Assembler::new(0x1000);
        a.j("end"); // forward
        a.label("mid");
        a.nop();
        a.label("end");
        a.beq(0, 0, "mid"); // backward
        let w = a.assemble();
        match decode(w[0]).unwrap() {
            Inst::Jal { rd: 0, imm } => assert_eq!(imm, 8),
            other => panic!("{other:?}"),
        }
        match decode(w[2]).unwrap() {
            Inst::Branch { imm, .. } => assert_eq!(imm, -4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new(0);
        a.j("nowhere");
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn store_encoding_round_trips() {
        let mut a = Assembler::new(0);
        a.sd(5, 2, -16);
        let w = a.assemble();
        match decode(w[0]).unwrap() {
            Inst::Store {
                rs1: 2,
                rs2: 5,
                imm,
                ..
            } => assert_eq!(imm, -16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn li_small() {
        let mut a = Assembler::new(0);
        a.li(10, -5);
        let w = a.assemble();
        assert_eq!(w.len(), 1);
        match decode(w[0]).unwrap() {
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm,
            } => assert_eq!(imm, -5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn csr_pseudos_decode() {
        let mut a = Assembler::new(0);
        a.csrr(10, 0x342);
        a.csrw(0x305, 11);
        let w = a.assemble();
        assert!(matches!(decode(w[0]), Some(Inst::Csr { .. })));
        assert!(matches!(decode(w[1]), Some(Inst::Csr { .. })));
    }
}
