//! Architectural CPU state: integer registers, PC, privilege mode, CSRs.

use crate::csr::CsrFile;

/// Privilege modes, ordered so that `User < Supervisor < Machine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mode {
    /// U-mode (applications, XPC callers/callees).
    User,
    /// S-mode (the kernel control plane).
    Supervisor,
    /// M-mode (firmware; the Binder port's exception trampoline in §5.5).
    Machine,
}

impl Mode {
    /// Encoding used in `mstatus.MPP`.
    pub fn to_bits(self) -> u64 {
        match self {
            Mode::User => 0,
            Mode::Supervisor => 1,
            Mode::Machine => 3,
        }
    }

    /// Decode from `mstatus.MPP` bits (2 maps to Machine defensively).
    pub fn from_bits(bits: u64) -> Mode {
        match bits & 0b11 {
            0 => Mode::User,
            1 => Mode::Supervisor,
            _ => Mode::Machine,
        }
    }
}

/// Architectural register state of one hart.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Current privilege mode.
    pub mode: Mode,
    /// Standard CSRs.
    pub csr: CsrFile,
}

impl Cpu {
    /// Reset state: PC 0, M-mode, zeroed registers.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
            mode: Mode::Machine,
            csr: CsrFile::new(),
        }
    }

    /// Read integer register `idx` (x0 reads as zero).
    pub fn x(&self, idx: u8) -> u64 {
        if idx == 0 {
            0
        } else {
            self.regs[idx as usize & 31]
        }
    }

    /// Write integer register `idx` (writes to x0 are discarded).
    pub fn set_x(&mut self, idx: u8, value: u64) {
        if idx != 0 {
            self.regs[idx as usize & 31] = value;
        }
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut c = Cpu::new();
        c.set_x(0, 123);
        assert_eq!(c.x(0), 0);
    }

    #[test]
    fn registers_hold_values() {
        let mut c = Cpu::new();
        c.set_x(5, 0xdead);
        assert_eq!(c.x(5), 0xdead);
    }

    #[test]
    fn mode_ordering_matches_privilege() {
        assert!(Mode::User < Mode::Supervisor);
        assert!(Mode::Supervisor < Mode::Machine);
    }

    #[test]
    fn mode_bits_round_trip() {
        for m in [Mode::User, Mode::Supervisor, Mode::Machine] {
            assert_eq!(Mode::from_bits(m.to_bits()), m);
        }
    }
}
