//! RV64IM + Zicsr + privileged instruction decoder.
//!
//! Instructions in the custom-0 opcode space (`0001011`) are deliberately
//! *not* decoded here: the machine hands them to the active
//! [`crate::ext::IsaExtension`], which is how the XPC engine claims
//! `xcall`/`xret`/`swapseg` (paper §4.1: "the three new instructions are
//! sent to the XPC engine in the Execute stage").

/// Decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    Lui {
        rd: u8,
        imm: i64,
    },
    Auipc {
        rd: u8,
        imm: i64,
    },
    Jal {
        rd: u8,
        imm: i64,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        imm: i64,
    },
    Load {
        op: LoadOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        imm: i64,
    },
    OpImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    OpImm32 {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    Op {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Op32 {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Fence,
    FenceI,
    Ecall,
    Ebreak,
    Mret,
    Sret,
    Wfi,
    SfenceVma {
        rs1: u8,
        rs2: u8,
    },
    Csr {
        op: CsrOp,
        rd: u8,
        csr: u16,
        src: CsrSrc,
    },
    /// RV64A: load-reserved (`word` selects LR.W vs LR.D).
    Lr {
        rd: u8,
        rs1: u8,
        word: bool,
    },
    /// RV64A: store-conditional.
    Sc {
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
    /// RV64A: atomic memory operation.
    Amo {
        op: AmoOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
}

/// RV64A atomic memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoOp {
    Swap,
    Add,
    Xor,
    And,
    Or,
    Min,
    Max,
    Minu,
    Maxu,
}

/// Branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// ALU operations shared between register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// CSR instruction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

/// CSR operand: register or zero-extended 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrSrc {
    Reg(u8),
    Imm(u8),
}

/// The custom-0 major opcode claimed by the XPC engine.
pub const OPCODE_CUSTOM0: u32 = 0b000_1011;

#[inline]
fn rd(raw: u32) -> u8 {
    ((raw >> 7) & 31) as u8
}
#[inline]
fn rs1(raw: u32) -> u8 {
    ((raw >> 15) & 31) as u8
}
#[inline]
fn rs2(raw: u32) -> u8 {
    ((raw >> 20) & 31) as u8
}
#[inline]
fn funct3(raw: u32) -> u32 {
    (raw >> 12) & 7
}
#[inline]
fn funct7(raw: u32) -> u32 {
    raw >> 25
}
#[inline]
fn imm_i(raw: u32) -> i64 {
    (raw as i32 >> 20) as i64
}
#[inline]
fn imm_s(raw: u32) -> i64 {
    let hi = (raw as i32 >> 25) as i64;
    let lo = ((raw >> 7) & 31) as i64;
    (hi << 5) | lo
}
#[inline]
fn imm_b(raw: u32) -> i64 {
    let bit12 = ((raw >> 31) & 1) as i64;
    let bit11 = ((raw >> 7) & 1) as i64;
    let hi = ((raw >> 25) & 0x3f) as i64;
    let lo = ((raw >> 8) & 0xf) as i64;
    let v = (bit12 << 12) | (bit11 << 11) | (hi << 5) | (lo << 1);
    (v << 51) >> 51
}
#[inline]
fn imm_u(raw: u32) -> i64 {
    (raw & 0xffff_f000) as i32 as i64
}
#[inline]
fn imm_j(raw: u32) -> i64 {
    let bit20 = ((raw >> 31) & 1) as i64;
    let hi = ((raw >> 21) & 0x3ff) as i64;
    let bit11 = ((raw >> 20) & 1) as i64;
    let mid = ((raw >> 12) & 0xff) as i64;
    let v = (bit20 << 20) | (mid << 12) | (bit11 << 11) | (hi << 1);
    (v << 43) >> 43
}

/// Decode one 32-bit instruction word. Returns `None` for anything this
/// machine does not implement (including the custom-0 space).
pub fn decode(raw: u32) -> Option<Inst> {
    let opcode = raw & 0x7f;
    Some(match opcode {
        0b011_0111 => Inst::Lui {
            rd: rd(raw),
            imm: imm_u(raw),
        },
        0b001_0111 => Inst::Auipc {
            rd: rd(raw),
            imm: imm_u(raw),
        },
        0b110_1111 => Inst::Jal {
            rd: rd(raw),
            imm: imm_j(raw),
        },
        0b110_0111 => {
            if funct3(raw) != 0 {
                return None;
            }
            Inst::Jalr {
                rd: rd(raw),
                rs1: rs1(raw),
                imm: imm_i(raw),
            }
        }
        0b110_0011 => {
            let op = match funct3(raw) {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return None,
            };
            Inst::Branch {
                op,
                rs1: rs1(raw),
                rs2: rs2(raw),
                imm: imm_b(raw),
            }
        }
        0b000_0011 => {
            let op = match funct3(raw) {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                3 => LoadOp::Ld,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                6 => LoadOp::Lwu,
                _ => return None,
            };
            Inst::Load {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                imm: imm_i(raw),
            }
        }
        0b010_0011 => {
            let op = match funct3(raw) {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                3 => StoreOp::Sd,
                _ => return None,
            };
            Inst::Store {
                op,
                rs1: rs1(raw),
                rs2: rs2(raw),
                imm: imm_s(raw),
            }
        }
        0b001_0011 => {
            let f3 = funct3(raw);
            let op = match f3 {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if funct7(raw) >> 1 == 0b01_0000 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return None,
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                (raw as i64 >> 20) & 0x3f
            } else {
                imm_i(raw)
            };
            Inst::OpImm {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                imm,
            }
        }
        0b001_1011 => {
            let op = match funct3(raw) {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                5 => {
                    if funct7(raw) == 0b010_0000 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                _ => return None,
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                ((raw >> 20) & 0x1f) as i64
            } else {
                imm_i(raw)
            };
            Inst::OpImm32 {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                imm,
            }
        }
        0b011_0011 => {
            let op = match (funct7(raw), funct3(raw)) {
                (0b000_0000, 0) => AluOp::Add,
                (0b010_0000, 0) => AluOp::Sub,
                (0b000_0000, 1) => AluOp::Sll,
                (0b000_0000, 2) => AluOp::Slt,
                (0b000_0000, 3) => AluOp::Sltu,
                (0b000_0000, 4) => AluOp::Xor,
                (0b000_0000, 5) => AluOp::Srl,
                (0b010_0000, 5) => AluOp::Sra,
                (0b000_0000, 6) => AluOp::Or,
                (0b000_0000, 7) => AluOp::And,
                (0b000_0001, 0) => AluOp::Mul,
                (0b000_0001, 1) => AluOp::Mulh,
                (0b000_0001, 2) => AluOp::Mulhsu,
                (0b000_0001, 3) => AluOp::Mulhu,
                (0b000_0001, 4) => AluOp::Div,
                (0b000_0001, 5) => AluOp::Divu,
                (0b000_0001, 6) => AluOp::Rem,
                (0b000_0001, 7) => AluOp::Remu,
                _ => return None,
            };
            Inst::Op {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                rs2: rs2(raw),
            }
        }
        0b011_1011 => {
            let op = match (funct7(raw), funct3(raw)) {
                (0b000_0000, 0) => AluOp::Add,
                (0b010_0000, 0) => AluOp::Sub,
                (0b000_0000, 1) => AluOp::Sll,
                (0b000_0000, 5) => AluOp::Srl,
                (0b010_0000, 5) => AluOp::Sra,
                (0b000_0001, 0) => AluOp::Mul,
                (0b000_0001, 4) => AluOp::Div,
                (0b000_0001, 5) => AluOp::Divu,
                (0b000_0001, 6) => AluOp::Rem,
                (0b000_0001, 7) => AluOp::Remu,
                _ => return None,
            };
            Inst::Op32 {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                rs2: rs2(raw),
            }
        }
        0b000_1111 => {
            if funct3(raw) == 1 {
                Inst::FenceI
            } else {
                Inst::Fence
            }
        }
        0b010_1111 => {
            let word = match funct3(raw) {
                2 => true,
                3 => false,
                _ => return None,
            };
            let funct5 = funct7(raw) >> 2;
            match funct5 {
                0b00010 => {
                    if rs2(raw) != 0 {
                        return None;
                    }
                    Inst::Lr {
                        rd: rd(raw),
                        rs1: rs1(raw),
                        word,
                    }
                }
                0b00011 => Inst::Sc {
                    rd: rd(raw),
                    rs1: rs1(raw),
                    rs2: rs2(raw),
                    word,
                },
                _ => {
                    let op = match funct5 {
                        0b00001 => AmoOp::Swap,
                        0b00000 => AmoOp::Add,
                        0b00100 => AmoOp::Xor,
                        0b01100 => AmoOp::And,
                        0b01000 => AmoOp::Or,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        _ => return None,
                    };
                    Inst::Amo {
                        op,
                        rd: rd(raw),
                        rs1: rs1(raw),
                        rs2: rs2(raw),
                        word,
                    }
                }
            }
        }
        0b111_0011 => {
            let f3 = funct3(raw);
            if f3 == 0 {
                match raw {
                    0x0000_0073 => Inst::Ecall,
                    0x0010_0073 => Inst::Ebreak,
                    0x3020_0073 => Inst::Mret,
                    0x1020_0073 => Inst::Sret,
                    0x1050_0073 => Inst::Wfi,
                    _ => {
                        if funct7(raw) == 0b000_1001 {
                            Inst::SfenceVma {
                                rs1: rs1(raw),
                                rs2: rs2(raw),
                            }
                        } else {
                            return None;
                        }
                    }
                }
            } else {
                let csr = (raw >> 20) as u16;
                let (op, src) = match f3 {
                    1 => (CsrOp::Rw, CsrSrc::Reg(rs1(raw))),
                    2 => (CsrOp::Rs, CsrSrc::Reg(rs1(raw))),
                    3 => (CsrOp::Rc, CsrSrc::Reg(rs1(raw))),
                    5 => (CsrOp::Rw, CsrSrc::Imm(rs1(raw))),
                    6 => (CsrOp::Rs, CsrSrc::Imm(rs1(raw))),
                    7 => (CsrOp::Rc, CsrSrc::Imm(rs1(raw))),
                    _ => return None,
                };
                Inst::Csr {
                    op,
                    rd: rd(raw),
                    csr,
                    src,
                }
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi a0, a0, 1  => imm=1 rs1=10 f3=0 rd=10 opcode=0010011
        let raw = (1 << 20) | (10 << 15) | (10 << 7) | 0b001_0011;
        assert_eq!(
            decode(raw),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: 1
            })
        );
    }

    #[test]
    fn decode_negative_imm() {
        // addi a0, zero, -1
        let raw = (0xfffu32 << 20) | (10 << 7) | 0b001_0011;
        assert_eq!(
            decode(raw),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: -1
            })
        );
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode(0x0000_0073), Some(Inst::Ecall));
        assert_eq!(decode(0x0010_0073), Some(Inst::Ebreak));
        assert_eq!(decode(0x3020_0073), Some(Inst::Mret));
        assert_eq!(decode(0x1020_0073), Some(Inst::Sret));
    }

    #[test]
    fn custom0_not_decoded() {
        assert_eq!(decode(OPCODE_CUSTOM0), None, "custom-0 is the extension's");
    }

    #[test]
    fn decode_branch_imm_sign() {
        // beq x0, x0, -4 : imm[12|10:5]=..., check via encoder in asm tests;
        // here just check a known encoding: 0xfe000ee3 is beq x0,x0,-4.
        match decode(0xfe00_0ee3) {
            Some(Inst::Branch {
                op: BranchOp::Eq,
                rs1: 0,
                rs2: 0,
                imm,
            }) => {
                assert_eq!(imm, -4)
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn decode_amo() {
        // amoswap.d a0, a1, (a2): funct5=00001 aq/rl=0 rs2=11 rs1=12 f3=3 rd=10
        let raw = (0b00001u32 << 27) | (11 << 20) | (12 << 15) | (3 << 12) | (10 << 7) | 0b010_1111;
        assert_eq!(
            decode(raw),
            Some(Inst::Amo {
                op: AmoOp::Swap,
                rd: 10,
                rs1: 12,
                rs2: 11,
                word: false
            })
        );
        // lr.w t0, (t1)
        let raw = (0b00010u32 << 27) | (6 << 15) | (2 << 12) | (5 << 7) | 0b010_1111;
        assert_eq!(
            decode(raw),
            Some(Inst::Lr {
                rd: 5,
                rs1: 6,
                word: true
            })
        );
    }

    #[test]
    fn decode_srai_shamt6() {
        // srai a0, a0, 40 (RV64 6-bit shamt): funct7(high)=0100000, shamt=40
        let raw =
            (0b010000u32 << 26) | (40 << 20) | (10 << 15) | (5 << 12) | (10 << 7) | 0b001_0011;
        assert_eq!(
            decode(raw),
            Some(Inst::OpImm {
                op: AluOp::Sra,
                rd: 10,
                rs1: 10,
                imm: 40
            })
        );
    }
}
