//! Fully-associative TLB model with optional ASID tagging.
//!
//! The Rocket core the paper uses has no tagged TLB, so every `satp` write
//! flushes translations — the ~40-cycle "TLB" component of Figure 5. The
//! "+Tagged-TLB" optimization keeps entries alive across address-space
//! switches by tagging them with the ASID; both behaviours live here behind
//! [`Tlb::set_tagged`].

/// Page-permission bits as stored in a PTE / TLB entry.
pub mod pte {
    /// Valid.
    pub const V: u64 = 1 << 0;
    /// Readable.
    pub const R: u64 = 1 << 1;
    /// Writable.
    pub const W: u64 = 1 << 2;
    /// Executable.
    pub const X: u64 = 1 << 3;
    /// User-accessible.
    pub const U: u64 = 1 << 4;
    /// Global.
    pub const G: u64 = 1 << 5;
    /// Accessed.
    pub const A: u64 = 1 << 6;
    /// Dirty.
    pub const D: u64 = 1 << 7;
}

/// One cached translation. `level` is the leaf level (0 = 4 KiB page,
/// 1 = 2 MiB, 2 = 1 GiB).
#[derive(Debug, Clone, Copy)]
pub struct TlbEntry {
    /// Virtual page number of the leaf (already masked for superpages).
    pub vpn: u64,
    /// Leaf level (0, 1, 2).
    pub level: u8,
    /// Address-space ID the entry was filled under.
    pub asid: u16,
    /// Physical page number of the leaf.
    pub ppn: u64,
    /// PTE permission bits (R/W/X/U/G/A/D).
    pub perms: u64,
    valid: bool,
    lru: u64,
}

/// Fully-associative, true-LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    tagged: bool,
    stamp: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Number of full flushes performed.
    pub flushes: u64,
}

impl Tlb {
    /// An empty TLB with `entries` slots.
    pub fn new(entries: usize, tagged: bool) -> Self {
        Tlb {
            entries: vec![
                TlbEntry {
                    vpn: 0,
                    level: 0,
                    asid: 0,
                    ppn: 0,
                    perms: 0,
                    valid: false,
                    lru: 0,
                };
                entries
            ],
            tagged,
            stamp: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Whether entries are ASID-tagged.
    pub fn tagged(&self) -> bool {
        self.tagged
    }

    /// Switch tagging on/off (flushes, since the tag semantics change).
    pub fn set_tagged(&mut self, tagged: bool) {
        self.tagged = tagged;
        self.flush_all();
    }

    fn vpn_matches(e: &TlbEntry, vpn: u64) -> bool {
        let shift = 9 * e.level as u64;
        (vpn >> shift) == (e.vpn >> shift)
    }

    /// Look up `vpn` under `asid`; counts hit/miss statistics.
    pub fn lookup(&mut self, vpn: u64, asid: u16) -> Option<TlbEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        let tagged = self.tagged;
        let found = self
            .entries
            .iter_mut()
            .find(|e| e.valid && Self::vpn_matches(e, vpn) && (!tagged || e.asid == asid));
        match found {
            Some(e) => {
                e.lru = stamp;
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a translation filled by the page walker. A refill of an
    /// already-resident (vpn, asid) updates that entry in place rather
    /// than duplicating it (duplicates would make lookups ambiguous).
    pub fn fill(&mut self, vpn: u64, level: u8, asid: u16, ppn: u64, perms: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let tagged = self.tagged;
        let victim = if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && Self::vpn_matches(e, vpn) && (!tagged || e.asid == asid))
        {
            existing
        } else {
            self.entries
                .iter_mut()
                .min_by_key(|e| if e.valid { e.lru } else { 0 })
                .expect("tlb has at least one entry")
        };
        *victim = TlbEntry {
            vpn,
            level,
            asid,
            ppn,
            perms,
            valid: true,
            lru: stamp,
        };
    }

    /// Flush everything (untagged `satp` write, or `sfence.vma` with no
    /// operands).
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.flushes += 1;
    }

    /// Flush entries for one ASID (tagged `sfence.vma` with ASID operand).
    pub fn flush_asid(&mut self, asid: u16) {
        for e in &mut self.entries {
            if e.asid == asid {
                e.valid = false;
            }
        }
        self.flushes += 1;
    }

    /// Count of currently valid entries.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut t = Tlb::new(4, false);
        assert!(t.lookup(0x10, 0).is_none());
        t.fill(0x10, 0, 0, 0x999, pte::R | pte::V);
        let e = t.lookup(0x10, 0).expect("filled");
        assert_eq!(e.ppn, 0x999);
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn untagged_ignores_asid() {
        let mut t = Tlb::new(4, false);
        t.fill(0x10, 0, 1, 0x1, pte::V);
        assert!(t.lookup(0x10, 2).is_some(), "untagged TLB matches any ASID");
    }

    #[test]
    fn tagged_separates_asids() {
        let mut t = Tlb::new(4, true);
        t.fill(0x10, 0, 1, 0x1, pte::V);
        assert!(t.lookup(0x10, 2).is_none());
        assert!(t.lookup(0x10, 1).is_some());
    }

    #[test]
    fn superpage_match() {
        let mut t = Tlb::new(4, false);
        // 2 MiB leaf at level 1: vpn low 9 bits ignored.
        t.fill(0x200, 1, 0, 0x40000, pte::V | pte::R);
        assert!(t.lookup(0x200 | 0x1ff, 0).is_some());
        assert!(t.lookup(0x400, 0).is_none());
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut t = Tlb::new(4, true);
        t.fill(0x10, 0, 1, 0x1, pte::V);
        t.fill(0x20, 0, 2, 0x2, pte::V);
        t.flush_asid(1);
        assert!(t.lookup(0x10, 1).is_none());
        assert!(t.lookup(0x20, 2).is_some());
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2, false);
        t.fill(0x1, 0, 0, 0x1, pte::V);
        t.fill(0x2, 0, 0, 0x2, pte::V);
        t.lookup(0x1, 0); // refresh
        t.fill(0x3, 0, 0, 0x3, pte::V); // evicts vpn 0x2
        assert!(t.lookup(0x1, 0).is_some());
        assert!(t.lookup(0x2, 0).is_none());
    }
}
