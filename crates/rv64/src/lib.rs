//! A cycle-modeled RV64IM+Zicsr emulator used as the hardware substrate of
//! the XPC (ISCA'19) reproduction.
//!
//! The paper evaluates XPC on a Rocket RISC-V core synthesized to FPGA. We
//! do not have that hardware, so this crate provides the closest executable
//! equivalent: a deterministic interpreter for RV64IM with the privileged
//! architecture (M/S/U modes, Sv39 paging, traps) plus a first-order timing
//! model (instruction base cost, I/D cache hit/miss, TLB fills via real page
//! walks, trap entry/exit penalties). All evaluation numbers in the
//! reproduction are *cycle counts* produced by this model.
//!
//! Extensibility is the point: the XPC engine ([`crate::ext::IsaExtension`])
//! plugs in new instructions (custom-0 opcode space), new CSRs and a
//! relay-segment translation window that takes priority over the page table,
//! exactly as §3 of the paper specifies.
//!
//! # Example
//!
//! ```
//! use rv64::{Assembler, Machine, MachineConfig, reg};
//!
//! let mut asm = Assembler::new(rv64::mem::DRAM_BASE);
//! asm.li(reg::A0, 41);
//! asm.addi(reg::A0, reg::A0, 1);
//! asm.ebreak();
//! let mut m = Machine::new(MachineConfig::rocket_u500());
//! m.load_program(&asm.assemble());
//! m.run(1_000).unwrap();
//! assert_eq!(m.core.cpu.x(reg::A0), 42);
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod csr;
pub mod disasm;
pub mod ext;
pub mod inst;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod reg;
pub mod tlb;
pub mod trap;

pub use asm::Assembler;
pub use config::{CacheConfig, MachineConfig};
pub use cpu::{Cpu, Mode};
pub use ext::{ExtResult, IsaExtension};
pub use machine::{Core, Exit, Machine, RunResult};
pub use mem::Memory;
pub use mmu::{Access, SegWindow};
pub use trap::{Cause, Trap};
