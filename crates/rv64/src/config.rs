//! Machine timing configuration.
//!
//! Two presets mirror the paper's two evaluation platforms:
//!
//! * [`MachineConfig::rocket_u500`] — the Rocket/siFive Freedom U500 FPGA
//!   setup of §5.1 (in-order, no tagged TLB by default).
//! * [`MachineConfig::arm_hpi`] — the GEM5 ARM HPI model of Table 4
//!   (in-order @2 GHz, 3-cycle L1, 13-cycle L2, 58-cycle translation-base
//!   write barrier measured on a Hikey-960 in §5.6).

/// Geometry and hit latency of one cache level model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Extra cycles charged on a hit (beyond the 1-cycle base issue cost).
    pub hit_extra: u64,
    /// Cycles charged on a miss (fill from the next level).
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// Full timing/feature configuration of a [`crate::Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Human-readable platform name (appears in experiment output).
    pub name: &'static str,
    /// DRAM size in bytes.
    pub dram_size: usize,
    /// Instruction cache model.
    pub icache: CacheConfig,
    /// Data cache model.
    pub dcache: CacheConfig,
    /// TLB entries (fully associative model).
    pub tlb_entries: usize,
    /// Whether the TLB is ASID-tagged. When false, every `satp` write
    /// flushes the TLB (the Rocket core in the paper lacks tagged TLBs,
    /// which is the 40-cycle penalty visible in Figure 5).
    pub tagged_tlb: bool,
    /// Pipeline-flush cycles charged on trap entry.
    pub trap_entry_cycles: u64,
    /// Pipeline-flush cycles charged on `mret`/`sret`.
    pub trap_return_cycles: u64,
    /// Barrier cycles charged on a `satp` write (ARM's TTBR0+isb+dsb cost;
    /// 0 on the Rocket model where the cost shows up as TLB refills).
    pub satp_write_cycles: u64,
    /// Extra cycles per page-table level on a TLB miss walk, on top of the
    /// memory accesses the walker performs.
    pub ptw_level_cycles: u64,
}

impl MachineConfig {
    /// Rocket RISC-V on siFive Freedom U500 (the paper's FPGA platform).
    pub fn rocket_u500() -> Self {
        MachineConfig {
            name: "rocket-u500",
            dram_size: 64 << 20,
            icache: CacheConfig {
                sets: 64,
                ways: 4,
                line_bytes: 64,
                hit_extra: 0,
                miss_penalty: 20,
            },
            dcache: CacheConfig {
                sets: 64,
                ways: 4,
                line_bytes: 64,
                hit_extra: 1,
                miss_penalty: 20,
            },
            tlb_entries: 32,
            tagged_tlb: false,
            trap_entry_cycles: 4,
            trap_return_cycles: 4,
            satp_write_cycles: 1,
            ptw_level_cycles: 2,
        }
    }

    /// GEM5 ARM HPI model of Table 4 / §5.6, mapped onto this machine:
    /// in-order, 3-cycle L1 access, 256-entry TLB, and the 58-cycle
    /// translation-table-base write barrier measured on Hikey-960.
    pub fn arm_hpi() -> Self {
        MachineConfig {
            name: "arm-hpi",
            dram_size: 64 << 20,
            icache: CacheConfig {
                sets: 128,
                ways: 2,
                line_bytes: 64,
                hit_extra: 0,
                miss_penalty: 13,
            },
            dcache: CacheConfig {
                sets: 128,
                ways: 4,
                line_bytes: 64,
                hit_extra: 2,
                miss_penalty: 13,
            },
            tlb_entries: 256,
            tagged_tlb: false,
            trap_entry_cycles: 3,
            trap_return_cycles: 3,
            satp_write_cycles: 58,
            ptw_level_cycles: 2,
        }
    }

    /// ARM HPI with pipelined L1 hits: the GEM5 in-order model overlaps
    /// L1 hit latency with issue, so warm loads cost no extra cycles —
    /// the configuration under which Table 5's 7/10-cycle XPC costs are
    /// measured. GEM5 also "does not simulate the TLB flushing costs"
    /// (§5.6), modelled here as a tagged TLB; the 58-cycle barrier is
    /// charged separately by the engine.
    pub fn arm_hpi_pipelined() -> Self {
        let mut c = Self::arm_hpi();
        c.name = "arm-hpi-pipelined";
        c.dcache.hit_extra = 0;
        c.tagged_tlb = true;
        c
    }

    /// Rocket with ASID-tagged TLB enabled (the "+Tagged-TLB" configuration
    /// of Figure 5).
    pub fn rocket_u500_tagged() -> Self {
        MachineConfig {
            name: "rocket-u500+tagged-tlb",
            tagged_tlb: true,
            ..Self::rocket_u500()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::rocket_u500()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let r = MachineConfig::rocket_u500();
        let a = MachineConfig::arm_hpi();
        assert_ne!(r, a);
        assert_eq!(a.satp_write_cycles, 58, "Table 5: +58 cycle TLB/TTBR cost");
        assert_eq!(a.tlb_entries, 256, "Table 4: 256-entry TLB");
    }

    #[test]
    fn tagged_variant_only_differs_in_tlb() {
        let base = MachineConfig::rocket_u500();
        let tagged = MachineConfig::rocket_u500_tagged();
        assert!(tagged.tagged_tlb && !base.tagged_tlb);
        assert_eq!(tagged.dcache, base.dcache);
    }

    #[test]
    fn cache_capacity() {
        let c = MachineConfig::rocket_u500().dcache;
        assert_eq!(c.capacity(), 64 * 4 * 64);
    }
}
