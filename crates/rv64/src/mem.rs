//! Physical memory and the tiny MMIO console/exit device.

use crate::trap::{Cause, Trap};

/// Base physical address of DRAM (matches common RISC-V platforms).
pub const DRAM_BASE: u64 = 0x8000_0000;

/// MMIO: writing a byte here prints it to the console buffer.
pub const MMIO_PUTCHAR: u64 = 0x1000_0000;
/// MMIO: writing a doubleword here requests machine exit with that code.
pub const MMIO_EXIT: u64 = 0x1000_0008;

/// Flat physical memory with a console/exit MMIO window.
///
/// Data is stored little-endian, as on real RISC-V.
#[derive(Debug)]
pub struct Memory {
    dram: Vec<u8>,
    /// Characters written to [`MMIO_PUTCHAR`].
    pub console: Vec<u8>,
    /// Exit code written to [`MMIO_EXIT`], if any.
    pub exit_code: Option<u64>,
}

impl Memory {
    /// Allocate `size` bytes of zeroed DRAM at [`DRAM_BASE`].
    pub fn new(size: usize) -> Self {
        Memory {
            dram: vec![0; size],
            console: Vec::new(),
            exit_code: None,
        }
    }

    /// DRAM size in bytes.
    pub fn size(&self) -> usize {
        self.dram.len()
    }

    /// Whether `pa..pa+len` lies entirely inside DRAM.
    pub fn in_dram(&self, pa: u64, len: u64) -> bool {
        pa >= DRAM_BASE && pa + len <= DRAM_BASE + self.dram.len() as u64
    }

    fn offset(&self, pa: u64, len: u64, store: bool) -> Result<usize, Trap> {
        if self.in_dram(pa, len) {
            Ok((pa - DRAM_BASE) as usize)
        } else {
            let cause = if store {
                Cause::StoreAccessFault
            } else {
                Cause::LoadAccessFault
            };
            Err(Trap::new(cause, pa))
        }
    }

    /// Read `size` (1/2/4/8) bytes at physical address `pa`.
    ///
    /// # Errors
    ///
    /// Returns a load access fault if the range is outside DRAM.
    pub fn read(&self, pa: u64, size: u64) -> Result<u64, Trap> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = self.offset(pa, size, false)?;
        let mut v: u64 = 0;
        for i in 0..size as usize {
            v |= (self.dram[off + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Write `size` (1/2/4/8) bytes at physical address `pa`.
    ///
    /// Writes to the MMIO window update the console / exit code instead of
    /// DRAM.
    ///
    /// # Errors
    ///
    /// Returns a store access fault if the range is neither DRAM nor MMIO.
    pub fn write(&mut self, pa: u64, size: u64, value: u64) -> Result<(), Trap> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        if pa == MMIO_PUTCHAR {
            self.console.push(value as u8);
            return Ok(());
        }
        if pa == MMIO_EXIT {
            self.exit_code = Some(value);
            return Ok(());
        }
        let off = self.offset(pa, size, true)?;
        for i in 0..size as usize {
            self.dram[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Bulk-copy `bytes` into DRAM at `pa` (loader path; not cycle-charged).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside DRAM — loading is a host-side
    /// operation and a bad load address is a harness bug.
    pub fn load_bytes(&mut self, pa: u64, bytes: &[u8]) {
        assert!(
            self.in_dram(pa, bytes.len() as u64),
            "load_bytes outside DRAM: pa={pa:#x} len={}",
            bytes.len()
        );
        let off = (pa - DRAM_BASE) as usize;
        self.dram[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Bulk-read `len` bytes from DRAM at `pa` (inspection path).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside DRAM.
    pub fn read_bytes(&self, pa: u64, len: usize) -> Vec<u8> {
        assert!(self.in_dram(pa, len as u64));
        let off = (pa - DRAM_BASE) as usize;
        self.dram[off..off + len].to_vec()
    }

    /// Console contents as a lossy string.
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_all_sizes() {
        let mut m = Memory::new(4096);
        for (size, val) in [
            (1u64, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(DRAM_BASE + 64, size, val).unwrap();
            assert_eq!(m.read(DRAM_BASE + 64, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(4096);
        m.write(DRAM_BASE, 4, 0x0403_0201).unwrap();
        assert_eq!(m.read(DRAM_BASE, 1).unwrap(), 0x01);
        assert_eq!(m.read(DRAM_BASE + 3, 1).unwrap(), 0x04);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = Memory::new(4096);
        assert!(m.read(0x0, 8).is_err());
        assert!(m.write(DRAM_BASE + 4095, 8, 0).is_err());
        assert_eq!(m.read(0x10, 4).unwrap_err().cause, Cause::LoadAccessFault);
    }

    #[test]
    fn mmio_console_and_exit() {
        let mut m = Memory::new(4096);
        for b in b"hi" {
            m.write(MMIO_PUTCHAR, 1, *b as u64).unwrap();
        }
        m.write(MMIO_EXIT, 8, 7).unwrap();
        assert_eq!(m.console_string(), "hi");
        assert_eq!(m.exit_code, Some(7));
    }

    #[test]
    fn load_bytes_round_trip() {
        let mut m = Memory::new(4096);
        m.load_bytes(DRAM_BASE + 100, &[1, 2, 3]);
        assert_eq!(m.read_bytes(DRAM_BASE + 100, 3), vec![1, 2, 3]);
    }
}
