//! The machine: one hart (core) plus an optional ISA extension, with the
//! fetch/decode/execute loop and trap delivery.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::cpu::{Cpu, Mode};
use crate::csr::mstatus;
use crate::ext::{ExtResult, IsaExtension, NullExtension};
use crate::inst::{self, AluOp, AmoOp, BranchOp, CsrOp, CsrSrc, Inst, LoadOp};
use crate::mem::{Memory, DRAM_BASE};
use crate::mmu::{Access, Mmu, Satp};
use crate::trap::{Cause, Trap};

/// Machine timer interrupt bit in `mie`/`mip` (MTIE/MTIP).
pub const MTIE: u64 = 1 << 7;

/// `mcause` value of a machine timer interrupt (interrupt bit | 7).
pub const MCAUSE_TIMER: u64 = (1 << 63) | 7;

/// Why `run` stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Guest executed `ebreak`.
    Break,
    /// Guest stored to the MMIO exit port.
    Exited(u64),
    /// Instruction budget exhausted.
    LimitReached,
}

/// Host-level simulation failures (guest bugs the harness wants surfaced
/// rather than looped on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A trap occurred but the handling mode's `tvec` is 0 — the guest
    /// never installed a handler, so delivering would livelock at PC 0.
    UnhandledTrap(Trap),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnhandledTrap(t) => write!(f, "unhandled guest trap: {t}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub exit: Exit,
    /// Cycle counter at stop.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
}

/// The core: everything an [`IsaExtension`] may touch.
#[derive(Debug)]
pub struct Core {
    /// Architectural register state.
    pub cpu: Cpu,
    /// Physical memory.
    pub mem: Memory,
    /// MMU (TLB + relay-segment window).
    pub mmu: Mmu,
    /// Instruction cache timing model.
    pub icache: Cache,
    /// Data cache timing model.
    pub dcache: Cache,
    /// Timing configuration.
    pub cfg: MachineConfig,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired instruction counter.
    pub instret: u64,
    /// LR/SC reservation (physical address), single-hart semantics.
    reservation: Option<u64>,
}

impl Core {
    /// Build a reset core for `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        Core {
            cpu: Cpu::new(),
            mem: Memory::new(cfg.dram_size),
            mmu: Mmu::new(&cfg),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            cfg,
            cycles: 0,
            instret: 0,
            reservation: None,
        }
    }

    /// Charge `n` cycles to the clock.
    pub fn charge(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Current `satp` fields.
    pub fn satp(&self) -> Satp {
        Satp::from_raw(self.cpu.csr.satp)
    }

    /// Translate a data/fetch address, charging walk cycles.
    pub fn translate(&mut self, va: u64, size: u64, access: Access) -> Result<u64, Trap> {
        let satp = self.satp();
        let t = self.mmu.translate(
            va,
            size,
            access,
            self.cpu.mode,
            satp,
            self.cpu.csr.sum(),
            self.cpu.csr.mxr(),
            &mut self.mem,
            &mut self.dcache,
            &self.cfg,
        )?;
        self.cycles += t.cycles;
        Ok(t.pa)
    }

    /// Load `size` bytes at virtual address `va`, charging cache cycles.
    ///
    /// # Errors
    ///
    /// Misaligned-load or translation/access traps.
    pub fn load(&mut self, va: u64, size: u64) -> Result<u64, Trap> {
        if !va.is_multiple_of(size) {
            return Err(Trap::new(Cause::LoadAddrMisaligned, va));
        }
        let pa = self.translate(va, size, Access::Load)?;
        let cost = self.dcache.access(pa).cycles;
        self.charge(cost);
        self.mem.read(pa, size)
    }

    /// Store `size` bytes at virtual address `va`, charging cache cycles.
    ///
    /// # Errors
    ///
    /// Misaligned-store or translation/access traps.
    pub fn store(&mut self, va: u64, size: u64, value: u64) -> Result<(), Trap> {
        if !va.is_multiple_of(size) {
            return Err(Trap::new(Cause::StoreAddrMisaligned, va));
        }
        let pa = self.translate(va, size, Access::Store)?;
        let cost = self.dcache.access(pa).cycles;
        self.charge(cost);
        self.mem.write(pa, size, value)
    }

    /// Physical load used by hardware units (XPC engine walks its tables
    /// physically), still charged through the D-cache.
    pub fn phys_load(&mut self, pa: u64, size: u64) -> Result<u64, Trap> {
        let cost = self.dcache.access(pa).cycles;
        self.charge(cost);
        self.mem.read(pa, size)
    }

    /// Physical store used by hardware units, charged through the D-cache.
    pub fn phys_store(&mut self, pa: u64, size: u64, value: u64) -> Result<(), Trap> {
        let cost = self.dcache.access(pa).cycles;
        self.charge(cost);
        self.mem.write(pa, size, value)
    }

    /// Fetch the instruction word at `pc`.
    fn fetch(&mut self, pc: u64) -> Result<u32, Trap> {
        if !pc.is_multiple_of(4) {
            return Err(Trap::new(Cause::InstAddrMisaligned, pc));
        }
        let pa = self.translate(pc, 4, Access::Fetch)?;
        let cost = self.icache.access(pa).cycles;
        self.charge(cost);
        let w = self
            .mem
            .read(pa, 4)
            .map_err(|_| Trap::new(Cause::InstAccessFault, pc))?;
        Ok(w as u32)
    }

    /// Deliver a trap: route to M or S mode per `medeleg`, update status
    /// CSRs, jump to the trap vector, charge the pipeline-flush cost.
    ///
    /// # Errors
    ///
    /// [`SimError::UnhandledTrap`] when the target `tvec` is 0.
    pub fn take_trap(&mut self, trap: Trap) -> Result<(), SimError> {
        let code = trap.cause.code();
        let delegate =
            self.cpu.mode != Mode::Machine && code < 64 && (self.cpu.csr.medeleg >> code) & 1 == 1;
        self.charge(self.cfg.trap_entry_cycles);
        if delegate {
            if self.cpu.csr.stvec == 0 {
                return Err(SimError::UnhandledTrap(trap));
            }
            self.cpu.csr.sepc = self.cpu.pc;
            self.cpu.csr.scause = code;
            self.cpu.csr.stval = trap.tval;
            let mut st = self.cpu.csr.mstatus;
            // SPIE <- SIE; SIE <- 0; SPP <- mode
            if st & mstatus::SIE != 0 {
                st |= mstatus::SPIE;
            } else {
                st &= !mstatus::SPIE;
            }
            st &= !mstatus::SIE;
            if self.cpu.mode == Mode::Supervisor {
                st |= mstatus::SPP;
            } else {
                st &= !mstatus::SPP;
            }
            self.cpu.csr.mstatus = st;
            self.cpu.mode = Mode::Supervisor;
            self.cpu.pc = self.cpu.csr.stvec & !0b11;
        } else {
            if self.cpu.csr.mtvec == 0 {
                return Err(SimError::UnhandledTrap(trap));
            }
            self.cpu.csr.mepc = self.cpu.pc;
            self.cpu.csr.mcause = code;
            self.cpu.csr.mtval = trap.tval;
            let mut st = self.cpu.csr.mstatus;
            if st & mstatus::MIE != 0 {
                st |= mstatus::MPIE;
            } else {
                st &= !mstatus::MPIE;
            }
            st &= !mstatus::MIE;
            st = (st & !mstatus::MPP_MASK) | (self.cpu.mode.to_bits() << mstatus::MPP_SHIFT);
            self.cpu.csr.mstatus = st;
            self.cpu.mode = Mode::Machine;
            self.cpu.pc = self.cpu.csr.mtvec & !0b11;
        }
        Ok(())
    }

    fn csr_read_any(&mut self, addr: u16, ext: &mut dyn IsaExtension) -> Result<u64, Trap> {
        if let Some(r) = self
            .cpu
            .csr
            .read(addr, self.cpu.mode, self.cycles, self.instret)
        {
            return r;
        }
        if let Some(r) = ext.csr_read(addr, self) {
            return r;
        }
        Err(Trap::new(Cause::IllegalInst, addr as u64))
    }

    fn csr_write_any(
        &mut self,
        addr: u16,
        value: u64,
        ext: &mut dyn IsaExtension,
    ) -> Result<(), Trap> {
        if let Some(r) = self.cpu.csr.write(addr, value, self.cpu.mode) {
            let satp_written = r?;
            if satp_written {
                self.charge(self.cfg.satp_write_cycles);
                if !self.mmu.tlb.tagged() {
                    self.mmu.tlb.flush_all();
                }
                ext.on_satp_write(self);
            }
            return Ok(());
        }
        if let Some(r) = ext.csr_write(addr, value, self) {
            return r;
        }
        Err(Trap::new(Cause::IllegalInst, addr as u64))
    }

    fn alu(op: AluOp, a: u64, b: u64) -> u64 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << (b & 63),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
            AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    a
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn alu32(op: AluOp, a: u64, b: u64) -> u64 {
        let a32 = a as u32;
        let b32 = b as u32;
        let r = match op {
            AluOp::Add => a32.wrapping_add(b32),
            AluOp::Sub => a32.wrapping_sub(b32),
            AluOp::Sll => a32 << (b32 & 31),
            AluOp::Srl => a32 >> (b32 & 31),
            AluOp::Sra => ((a32 as i32) >> (b32 & 31)) as u32,
            AluOp::Mul => a32.wrapping_mul(b32),
            AluOp::Div => {
                if b32 == 0 {
                    u32::MAX
                } else if a32 as i32 == i32::MIN && b32 as i32 == -1 {
                    a32
                } else {
                    ((a32 as i32) / (b32 as i32)) as u32
                }
            }
            AluOp::Divu => a32.checked_div(b32).unwrap_or(u32::MAX),
            AluOp::Rem => {
                if b32 == 0 {
                    a32
                } else if a32 as i32 == i32::MIN && b32 as i32 == -1 {
                    0
                } else {
                    ((a32 as i32) % (b32 as i32)) as u32
                }
            }
            AluOp::Remu => {
                if b32 == 0 {
                    a32
                } else {
                    a32 % b32
                }
            }
            _ => unreachable!("not an RV64 *W op"),
        };
        r as i32 as i64 as u64
    }

    /// Execute one decoded instruction; `pc` advancement included.
    fn execute(&mut self, i: Inst, ext: &mut dyn IsaExtension) -> Result<(), Trap> {
        let pc = self.cpu.pc;
        let mut next = pc.wrapping_add(4);
        match i {
            Inst::Lui { rd, imm } => self.cpu.set_x(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.cpu.set_x(rd, pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, imm } => {
                self.cpu.set_x(rd, next);
                next = pc.wrapping_add(imm as u64);
            }
            Inst::Jalr { rd, rs1, imm } => {
                let t = self.cpu.x(rs1).wrapping_add(imm as u64) & !1;
                self.cpu.set_x(rd, next);
                next = t;
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                let a = self.cpu.x(rs1);
                let b = self.cpu.x(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i64) < (b as i64),
                    BranchOp::Ge => (a as i64) >= (b as i64),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next = pc.wrapping_add(imm as u64);
                    // Taken-branch bubble on the in-order pipeline.
                    self.charge(1);
                }
            }
            Inst::Load { op, rd, rs1, imm } => {
                let va = self.cpu.x(rs1).wrapping_add(imm as u64);
                let raw = self.load(va, op.size())?;
                let v = match op {
                    LoadOp::Lb => raw as u8 as i8 as i64 as u64,
                    LoadOp::Lh => raw as u16 as i16 as i64 as u64,
                    LoadOp::Lw => raw as u32 as i32 as i64 as u64,
                    LoadOp::Ld => raw,
                    LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => raw,
                };
                self.cpu.set_x(rd, v);
            }
            Inst::Store { op, rs1, rs2, imm } => {
                let va = self.cpu.x(rs1).wrapping_add(imm as u64);
                self.store(va, op.size(), self.cpu.x(rs2))?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = Self::alu(op, self.cpu.x(rs1), imm as u64);
                self.cpu.set_x(rd, v);
            }
            Inst::OpImm32 { op, rd, rs1, imm } => {
                let v = Self::alu32(op, self.cpu.x(rs1), imm as u64);
                self.cpu.set_x(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = Self::alu(op, self.cpu.x(rs1), self.cpu.x(rs2));
                self.cpu.set_x(rd, v);
            }
            Inst::Op32 { op, rd, rs1, rs2 } => {
                let v = Self::alu32(op, self.cpu.x(rs1), self.cpu.x(rs2));
                self.cpu.set_x(rd, v);
            }
            Inst::Fence | Inst::FenceI | Inst::Wfi => {}
            Inst::SfenceVma { rs1: _, rs2 } => {
                if self.cpu.mode == Mode::User {
                    return Err(Trap::new(Cause::IllegalInst, 0));
                }
                if rs2 == 0 {
                    self.mmu.tlb.flush_all();
                } else {
                    let asid = self.cpu.x(rs2) as u16;
                    self.mmu.tlb.flush_asid(asid);
                }
                self.charge(2);
            }
            Inst::Ecall => {
                let cause = match self.cpu.mode {
                    Mode::User => Cause::EcallFromU,
                    Mode::Supervisor => Cause::EcallFromS,
                    Mode::Machine => Cause::EcallFromM,
                };
                return Err(Trap::bare(cause));
            }
            Inst::Ebreak => return Err(Trap::bare(Cause::Breakpoint)),
            Inst::Mret => {
                if self.cpu.mode != Mode::Machine {
                    return Err(Trap::new(Cause::IllegalInst, 0));
                }
                let st = self.cpu.csr.mstatus;
                let mpp = Mode::from_bits((st & mstatus::MPP_MASK) >> mstatus::MPP_SHIFT);
                let mut new = st;
                if st & mstatus::MPIE != 0 {
                    new |= mstatus::MIE;
                } else {
                    new &= !mstatus::MIE;
                }
                new |= mstatus::MPIE;
                new &= !mstatus::MPP_MASK;
                self.cpu.csr.mstatus = new;
                self.cpu.mode = mpp;
                next = self.cpu.csr.mepc;
                self.charge(self.cfg.trap_return_cycles);
            }
            Inst::Sret => {
                if self.cpu.mode == Mode::User {
                    return Err(Trap::new(Cause::IllegalInst, 0));
                }
                let st = self.cpu.csr.mstatus;
                let spp = if st & mstatus::SPP != 0 {
                    Mode::Supervisor
                } else {
                    Mode::User
                };
                let mut new = st;
                if st & mstatus::SPIE != 0 {
                    new |= mstatus::SIE;
                } else {
                    new &= !mstatus::SIE;
                }
                new |= mstatus::SPIE;
                new &= !mstatus::SPP;
                self.cpu.csr.mstatus = new;
                self.cpu.mode = spp;
                next = self.cpu.csr.sepc;
                self.charge(self.cfg.trap_return_cycles);
            }
            Inst::Csr { op, rd, csr, src } => {
                let srcv = match src {
                    CsrSrc::Reg(r) => self.cpu.x(r),
                    CsrSrc::Imm(v) => v as u64,
                };
                let write_needed = match (op, src) {
                    (CsrOp::Rw, _) => true,
                    (_, CsrSrc::Reg(r)) => r != 0,
                    (_, CsrSrc::Imm(v)) => v != 0,
                };
                let old = self.csr_read_any(csr, ext)?;
                if write_needed {
                    let newv = match op {
                        CsrOp::Rw => srcv,
                        CsrOp::Rs => old | srcv,
                        CsrOp::Rc => old & !srcv,
                    };
                    self.csr_write_any(csr, newv, ext)?;
                }
                self.cpu.set_x(rd, old);
            }
            Inst::Lr { rd, rs1, word } => {
                let size = if word { 4 } else { 8 };
                let va = self.cpu.x(rs1);
                if !va.is_multiple_of(size) {
                    return Err(Trap::new(Cause::LoadAddrMisaligned, va));
                }
                let pa = self.translate(va, size, Access::Load)?;
                let cost = self.dcache.access(pa).cycles;
                self.charge(cost + 1); // AMO ordering cost
                let raw = self.mem.read(pa, size)?;
                let v = if word {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                self.reservation = Some(pa);
                self.cpu.set_x(rd, v);
            }
            Inst::Sc { rd, rs1, rs2, word } => {
                let size = if word { 4 } else { 8 };
                let va = self.cpu.x(rs1);
                if !va.is_multiple_of(size) {
                    return Err(Trap::new(Cause::StoreAddrMisaligned, va));
                }
                let pa = self.translate(va, size, Access::Store)?;
                let cost = self.dcache.access(pa).cycles;
                self.charge(cost + 1);
                if self.reservation == Some(pa) {
                    self.mem.write(pa, size, self.cpu.x(rs2))?;
                    self.cpu.set_x(rd, 0);
                } else {
                    self.cpu.set_x(rd, 1);
                }
                self.reservation = None;
            }
            Inst::Amo {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let size = if word { 4 } else { 8 };
                let va = self.cpu.x(rs1);
                if !va.is_multiple_of(size) {
                    return Err(Trap::new(Cause::StoreAddrMisaligned, va));
                }
                let pa = self.translate(va, size, Access::Store)?;
                let cost = self.dcache.access(pa).cycles;
                self.charge(cost + 2); // read-modify-write turnaround
                let raw = self.mem.read(pa, size)?;
                let old = if word {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                let src = self.cpu.x(rs2);
                let new = Self::amo(op, old, src, word);
                let stored = if word { new as u32 as u64 } else { new };
                self.mem.write(pa, size, stored)?;
                self.cpu.set_x(rd, old);
            }
        }
        self.cpu.pc = next;
        Ok(())
    }

    fn amo(op: AmoOp, old: u64, src: u64, word: bool) -> u64 {
        let (a, b) = if word {
            (
                old as u32 as i32 as i64 as u64,
                src as u32 as i32 as i64 as u64,
            )
        } else {
            (old, src)
        };
        match op {
            AmoOp::Swap => b,
            AmoOp::Add => a.wrapping_add(b),
            AmoOp::Xor => a ^ b,
            AmoOp::And => a & b,
            AmoOp::Or => a | b,
            AmoOp::Min => {
                if (a as i64) < (b as i64) {
                    a
                } else {
                    b
                }
            }
            AmoOp::Max => {
                if (a as i64) > (b as i64) {
                    a
                } else {
                    b
                }
            }
            AmoOp::Minu => a.min(b),
            AmoOp::Maxu => a.max(b),
        }
    }
}

/// One emulated hart with its extension.
pub struct Machine {
    /// The core (registers, memory, MMU, caches, clock).
    pub core: Core,
    ext: Box<dyn IsaExtension>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.core.cpu.pc)
            .field("cycles", &self.core.cycles)
            .field("ext", &self.ext.name())
            .finish()
    }
}

impl Machine {
    /// A machine with no ISA extension (baseline platform).
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            core: Core::new(cfg),
            ext: Box::new(NullExtension),
        }
    }

    /// A machine with an ISA extension installed (e.g. the XPC engine).
    pub fn with_extension(cfg: MachineConfig, ext: Box<dyn IsaExtension>) -> Self {
        Machine {
            core: Core::new(cfg),
            ext,
        }
    }

    /// Access the installed extension (for test inspection).
    pub fn extension(&mut self) -> &mut dyn IsaExtension {
        self.ext.as_mut()
    }

    /// Borrow the core and the extension at the same time — host-side
    /// control planes (the `xpc` kernel model) need both to mirror what a
    /// guest kernel would do through CSR instructions.
    pub fn split(&mut self) -> (&mut Core, &mut dyn IsaExtension) {
        (&mut self.core, self.ext.as_mut())
    }

    /// Load instruction words at [`DRAM_BASE`] and point the PC there.
    pub fn load_program(&mut self, words: &[u32]) {
        self.load_program_at(DRAM_BASE, words);
        self.core.cpu.pc = DRAM_BASE;
    }

    /// Load instruction words at `pa` without touching the PC.
    pub fn load_program_at(&mut self, pa: u64, words: &[u32]) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.core.mem.load_bytes(pa, &bytes);
    }

    /// Deliver a machine timer interrupt if one is pending and enabled.
    fn check_timer(&mut self) -> Result<bool, SimError> {
        let c = &self.core.cpu.csr;
        let pending = c.mtimecmp != 0 && self.core.cycles >= c.mtimecmp;
        if !pending || c.mie & MTIE == 0 {
            return Ok(false);
        }
        // M-interrupts fire in U/S unconditionally, in M only with MIE.
        if self.core.cpu.mode == Mode::Machine && c.mstatus & mstatus::MIE == 0 {
            return Ok(false);
        }
        if self.core.cpu.csr.mtvec == 0 {
            return Err(SimError::UnhandledTrap(Trap::bare(Cause::Breakpoint)));
        }
        let core = &mut self.core;
        core.charge(core.cfg.trap_entry_cycles);
        core.cpu.csr.mepc = core.cpu.pc;
        core.cpu.csr.mcause = MCAUSE_TIMER;
        core.cpu.csr.mtval = 0;
        let mut st = core.cpu.csr.mstatus;
        if st & mstatus::MIE != 0 {
            st |= mstatus::MPIE;
        } else {
            st &= !mstatus::MPIE;
        }
        st &= !mstatus::MIE;
        st = (st & !mstatus::MPP_MASK) | (core.cpu.mode.to_bits() << mstatus::MPP_SHIFT);
        core.cpu.csr.mstatus = st;
        core.cpu.mode = Mode::Machine;
        core.cpu.pc = core.cpu.csr.mtvec & !0b11;
        Ok(true)
    }

    /// Execute one instruction (including trap and timer-interrupt
    /// delivery).
    ///
    /// # Errors
    ///
    /// [`SimError`] on unrecoverable guest state.
    pub fn step(&mut self) -> Result<Option<Exit>, SimError> {
        if self.check_timer()? {
            return Ok(None);
        }
        let pc = self.core.cpu.pc;
        self.core.charge(1); // base issue cost
        let raw = match self.core.fetch(pc) {
            Ok(w) => w,
            Err(t) => {
                self.core.take_trap(t)?;
                return Ok(None);
            }
        };
        let result = match inst::decode(raw) {
            Some(Inst::Ebreak) => return Ok(Some(Exit::Break)),
            Some(i) => {
                self.core.instret += 1;
                self.core.execute(i, self.ext.as_mut())
            }
            None => {
                self.core.instret += 1;
                match self.ext.execute(raw, &mut self.core) {
                    ExtResult::Done => Ok(()),
                    ExtResult::Trapped(t) => Err(t),
                    ExtResult::NotClaimed => Err(Trap::new(Cause::IllegalInst, raw as u64)),
                }
            }
        };
        if let Err(t) = result {
            self.core.take_trap(t)?;
            return Ok(None);
        }
        if let Some(code) = self.core.mem.exit_code.take() {
            return Ok(Some(Exit::Exited(code)));
        }
        Ok(None)
    }

    /// Run until exit or `max_instr` steps.
    ///
    /// # Errors
    ///
    /// [`SimError`] on unrecoverable guest state.
    pub fn run(&mut self, max_instr: u64) -> Result<RunResult, SimError> {
        for _ in 0..max_instr {
            if let Some(exit) = self.step()? {
                return Ok(RunResult {
                    exit,
                    cycles: self.core.cycles,
                    instret: self.core.instret,
                });
            }
        }
        Ok(RunResult {
            exit: Exit::LimitReached,
            cycles: self.core.cycles,
            instret: self.core.instret,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::csr::addr as csr_addr;
    use crate::reg;

    fn run_prog(build: impl FnOnce(&mut Assembler)) -> Machine {
        let mut a = Assembler::new(DRAM_BASE);
        build(&mut a);
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        let r = m.run(100_000).expect("no sim error");
        assert_eq!(r.exit, Exit::Break, "program should hit ebreak");
        m
    }

    #[test]
    fn arithmetic_loop() {
        let m = run_prog(|a| {
            a.li(reg::A0, 0);
            a.li(reg::A1, 10);
            a.label("loop");
            a.add(reg::A0, reg::A0, reg::A1);
            a.addi(reg::A1, reg::A1, -1);
            a.bne(reg::A1, reg::ZERO, "loop");
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0), (1..=10).sum::<u64>());
    }

    #[test]
    fn li_64bit_constants() {
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            0x7fff_f800,
            0x1234_5678,
            -0x1234_5678,
            0x0123_4567_89ab_cdef,
            -0x0123_4567_89ab_cdef,
            i64::MAX,
            i64::MIN,
            0x8000_0000u32 as i64, // positive 2^31, needs 64-bit path
        ] {
            let m = run_prog(|a| {
                a.li(reg::A0, v);
                a.ebreak();
            });
            assert_eq!(m.core.cpu.x(reg::A0) as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn loads_and_stores() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.li(reg::T1, -2);
            a.sd(reg::T1, reg::T0, 0);
            a.lw(reg::A0, reg::T0, 0); // sign-extended -2
            a.lbu(reg::A1, reg::T0, 0); // 0xfe
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0) as i64, -2);
        assert_eq!(m.core.cpu.x(reg::A1), 0xfe);
    }

    #[test]
    fn ecall_to_mmode_and_mret() {
        // mtvec handler sets a0=99 then mret back.
        let mut a = Assembler::new(DRAM_BASE);
        a.li(reg::T0, (DRAM_BASE + 0x100) as i64);
        a.csrw(csr_addr::MTVEC, reg::T0);
        a.ecall();
        a.ebreak(); // returns here
        let body = a.assemble();

        let mut h = Assembler::new(DRAM_BASE + 0x100);
        h.li(reg::A0, 99);
        h.csrr(reg::T1, csr_addr::MEPC);
        h.addi(reg::T1, reg::T1, 4);
        h.csrw(csr_addr::MEPC, reg::T1);
        h.mret();
        let handler = h.assemble();

        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&body);
        m.load_program_at(DRAM_BASE + 0x100, &handler);
        let r = m.run(1000).unwrap();
        assert_eq!(r.exit, Exit::Break);
        assert_eq!(m.core.cpu.x(reg::A0), 99);
        assert_eq!(m.core.cpu.csr.mcause, Cause::EcallFromM.code());
    }

    #[test]
    fn mret_drops_to_user_and_ecall_comes_back() {
        // M-mode: set mtvec, set MPP=U, mepc=user code, mret; user ecalls.
        let mut a = Assembler::new(DRAM_BASE);
        a.li(reg::T0, (DRAM_BASE + 0x100) as i64);
        a.csrw(csr_addr::MTVEC, reg::T0);
        a.li(reg::T0, (DRAM_BASE + 0x200) as i64);
        a.csrw(csr_addr::MEPC, reg::T0);
        // MPP stays 0 (User) after reset; just mret.
        a.mret();
        let boot = a.assemble();

        let mut h = Assembler::new(DRAM_BASE + 0x100);
        h.ebreak(); // trap handler: stop.
        let handler = h.assemble();

        let mut u = Assembler::new(DRAM_BASE + 0x200);
        u.li(reg::A0, 7);
        u.ecall();
        let user = u.assemble();

        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&boot);
        m.load_program_at(DRAM_BASE + 0x100, &handler);
        m.load_program_at(DRAM_BASE + 0x200, &user);
        let r = m.run(1000).unwrap();
        assert_eq!(r.exit, Exit::Break);
        assert_eq!(m.core.cpu.x(reg::A0), 7);
        assert_eq!(m.core.cpu.csr.mcause, Cause::EcallFromU.code());
        assert_eq!(
            m.core.cpu.csr.mepc,
            DRAM_BASE + 0x200 + 4 * (user.len() as u64 - 1)
        );
    }

    #[test]
    fn unhandled_trap_is_sim_error() {
        let mut a = Assembler::new(DRAM_BASE);
        a.ecall(); // no mtvec installed
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        assert!(matches!(m.run(10), Err(SimError::UnhandledTrap(_))));
    }

    #[test]
    fn console_output() {
        let m = run_prog(|a| {
            a.li(reg::T0, crate::mem::MMIO_PUTCHAR as i64);
            a.li(reg::T1, b'X' as i64);
            a.sb(reg::T1, reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(m.core.mem.console_string(), "X");
    }

    #[test]
    fn mmio_exit() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(reg::T0, crate::mem::MMIO_EXIT as i64);
        a.li(reg::T1, 42);
        a.sd(reg::T1, reg::T0, 0);
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        let r = m.run(100).unwrap();
        assert_eq!(r.exit, Exit::Exited(42));
    }

    #[test]
    fn cycles_exceed_instret_with_cold_caches() {
        let m = run_prog(|a| {
            a.li(reg::A0, 5);
            a.ebreak();
        });
        assert!(m.core.cycles >= m.core.instret);
        assert!(m.core.cycles > 0);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(reg::T0, (DRAM_BASE + 0x100) as i64);
        a.csrw(csr_addr::MTVEC, reg::T0);
        a.raw(0xffff_ffff); // not a valid instruction
        let mut h = Assembler::new(DRAM_BASE + 0x100);
        h.csrr(reg::A0, csr_addr::MCAUSE);
        h.ebreak();
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        m.load_program_at(DRAM_BASE + 0x100, &h.assemble());
        let r = m.run(100).unwrap();
        assert_eq!(r.exit, Exit::Break);
        assert_eq!(m.core.cpu.x(reg::A0), Cause::IllegalInst.code());
    }

    #[test]
    fn csr_read_write_program() {
        let m = run_prog(|a| {
            a.li(reg::T0, 0x1234);
            a.csrw(csr_addr::MSCRATCH, reg::T0);
            a.csrr(reg::A0, csr_addr::MSCRATCH);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0), 0x1234);
    }
}

#[cfg(test)]
mod atomics_tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg;

    fn run_prog(build: impl FnOnce(&mut Assembler)) -> Machine {
        let mut a = Assembler::new(DRAM_BASE);
        build(&mut a);
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        let r = m.run(100_000).expect("no sim error");
        assert_eq!(r.exit, Exit::Break);
        m
    }

    #[test]
    fn amoswap_returns_old_and_stores_new() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.li(reg::T1, 77);
            a.sd(reg::T1, reg::T0, 0);
            a.li(reg::T2, 99);
            a.amoswap_d(reg::A0, reg::T2, reg::T0);
            a.ld(reg::A1, reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0), 77, "old value returned");
        assert_eq!(m.core.cpu.x(reg::A1), 99, "new value stored");
    }

    #[test]
    fn amoadd_accumulates() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.li(reg::T1, 5);
            a.sd(reg::T1, reg::T0, 0);
            a.li(reg::T2, 3);
            a.amoadd_d(reg::A0, reg::T2, reg::T0);
            a.amoadd_d(reg::A0, reg::T2, reg::T0);
            a.ld(reg::A1, reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0), 8, "second amoadd sees 5+3");
        assert_eq!(m.core.cpu.x(reg::A1), 11);
    }

    #[test]
    fn amoadd_w_sign_extends() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.li(reg::T1, -2);
            a.sw(reg::T1, reg::T0, 0);
            a.li(reg::T2, 1);
            a.amoadd_w(reg::A0, reg::T2, reg::T0);
            a.lw(reg::A1, reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0) as i64, -2);
        assert_eq!(m.core.cpu.x(reg::A1) as i64, -1);
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.li(reg::T1, 10);
            a.sd(reg::T1, reg::T0, 0);
            // Successful LR/SC pair.
            a.lr_d(reg::A0, reg::T0);
            a.li(reg::T2, 20);
            a.sc_d(reg::A1, reg::T2, reg::T0); // a1 = 0 (success)
                                               // SC without a reservation fails.
            a.li(reg::T2, 30);
            a.sc_d(reg::A2, reg::T2, reg::T0); // a2 = 1 (failure)
            a.ld(reg::A3, reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A0), 10);
        assert_eq!(m.core.cpu.x(reg::A1), 0, "sc succeeds under reservation");
        assert_eq!(m.core.cpu.x(reg::A2), 1, "sc fails without reservation");
        assert_eq!(m.core.cpu.x(reg::A3), 20, "failed sc did not store");
    }

    #[test]
    fn intervening_store_breaks_reservation() {
        let m = run_prog(|a| {
            a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
            a.lr_d(reg::A0, reg::T0);
            // Same-hart intervening SC to a different address clears it.
            a.li(reg::T3, (DRAM_BASE + 0x2000) as i64);
            a.lr_d(reg::A4, reg::T3); // reservation moves
            a.li(reg::T2, 1);
            a.sc_d(reg::A1, reg::T2, reg::T0); // stale address: fails
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(reg::A1), 1, "reservation moved elsewhere");
    }
}
