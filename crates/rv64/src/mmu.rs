//! Sv39 address translation: seg-window override, TLB, and page walker.
//!
//! Translation priority follows §3.3 of the paper exactly: the relay
//! segment window ([`SegWindow`], programmed by the XPC engine through
//! `seg-reg`) is checked *before* the page table, maps a contiguous virtual
//! range to contiguous physical memory, and needs no TLB entries — hence no
//! shootdown when its ownership moves between address spaces.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::cpu::Mode;
use crate::mem::Memory;
use crate::tlb::{pte, Tlb};
use crate::trap::{Cause, Trap};

/// Kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store (or AMO).
    Store,
}

impl Access {
    fn page_fault(self) -> Cause {
        match self {
            Access::Fetch => Cause::InstPageFault,
            Access::Load => Cause::LoadPageFault,
            Access::Store => Cause::StorePageFault,
        }
    }
}

/// The relay-segment translation window (`seg-reg` of Table 2).
///
/// Contiguous virtual range `va_base..va_base+len` maps to physical
/// `pa_base..pa_base+len`. The XPC engine installs/clears this on `xcall`,
/// `xret` and `swapseg`; user code can only *shrink* it via `seg-mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegWindow {
    /// Virtual base address.
    pub va_base: u64,
    /// Physical base address — of the data for a contiguous segment, or
    /// of the one-level *relay page table* for a paged one.
    pub pa_base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether stores are permitted.
    pub writable: bool,
    /// §6.2 "Relay Page Table": when set, `pa_base` points at a table of
    /// 64-bit PPN entries (entry i maps window page i) and the walker
    /// performs one extra memory access per translation. Supports
    /// non-contiguous backing memory at page granularity.
    pub paged: bool,
}

impl SegWindow {
    /// Does `va..va+size` fall inside the window?
    pub fn contains(&self, va: u64, size: u64) -> bool {
        self.len > 0 && va >= self.va_base && va + size <= self.va_base + self.len
    }

    /// Translate an address inside a *contiguous* window.
    ///
    /// # Panics
    ///
    /// Debug-asserts the window is not paged (paged translation needs
    /// memory access and lives in [`Mmu::translate`]).
    pub fn translate(&self, va: u64) -> u64 {
        debug_assert!(!self.paged);
        self.pa_base + (va - self.va_base)
    }
}

/// Result of a translation: physical address plus cycles charged for any
/// page walk performed.
#[derive(Debug, Clone, Copy)]
pub struct Translation {
    /// Physical address.
    pub pa: u64,
    /// Extra cycles spent (TLB-miss walk; 0 on hit or bare mode).
    pub cycles: u64,
}

/// MMU: seg window slot + TLB + Sv39 walker state/statistics.
#[derive(Debug)]
pub struct Mmu {
    /// Relay-segment window; checked before the page table.
    pub seg_window: Option<SegWindow>,
    /// The TLB model.
    pub tlb: Tlb,
    /// Completed page walks.
    pub walks: u64,
}

/// Fields of `satp` relevant to translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Satp {
    /// Translation enabled (mode = Sv39)?
    pub enabled: bool,
    /// Address-space ID.
    pub asid: u16,
    /// Root page-table physical page number.
    pub root_ppn: u64,
}

impl Satp {
    /// Decode a raw `satp` CSR value.
    pub fn from_raw(raw: u64) -> Self {
        Satp {
            enabled: raw >> 60 == 8,
            asid: ((raw >> 44) & 0xffff) as u16,
            root_ppn: raw & ((1 << 44) - 1),
        }
    }

    /// Encode back to the raw CSR value.
    pub fn to_raw(self) -> u64 {
        let mode = if self.enabled { 8u64 } else { 0 };
        (mode << 60) | ((self.asid as u64) << 44) | self.root_ppn
    }
}

impl Mmu {
    /// Build an MMU with a TLB of `cfg.tlb_entries` entries.
    pub fn new(cfg: &MachineConfig) -> Self {
        Mmu {
            seg_window: None,
            tlb: Tlb::new(cfg.tlb_entries, cfg.tagged_tlb),
            walks: 0,
        }
    }

    /// Translate `va` for `access` in privilege `mode`.
    ///
    /// Order: seg window (any mode, user-reachable — it is the relay-seg),
    /// then bare mode (M-mode or satp off), then TLB, then an Sv39 walk
    /// charged through the D-cache model.
    ///
    /// # Errors
    ///
    /// Returns the architectural page fault for the access kind on a missing
    /// or permission-violating mapping, or a seg-window permission error as
    /// a store page fault.
    #[allow(clippy::too_many_arguments)]
    pub fn translate(
        &mut self,
        va: u64,
        size: u64,
        access: Access,
        mode: Mode,
        satp: Satp,
        sum: bool,
        mxr: bool,
        mem: &mut Memory,
        dcache: &mut Cache,
        cfg: &MachineConfig,
    ) -> Result<Translation, Trap> {
        // 1. Relay segment window: higher priority than the page table.
        if let Some(seg) = self.seg_window {
            if seg.contains(va, size) {
                if access == Access::Store && !seg.writable {
                    return Err(Trap::new(Cause::StorePageFault, va));
                }
                if access == Access::Fetch {
                    // The relay segment carries data, never code.
                    return Err(Trap::new(Cause::InstPageFault, va));
                }
                if !seg.paged {
                    return Ok(Translation {
                        pa: seg.translate(va),
                        cycles: 0,
                    });
                }
                // Relay page table (§6.2): one extra walk level through
                // the D-cache; the window never spans page boundaries
                // mid-access because accesses are <= 8 B aligned.
                let off = va - seg.va_base;
                let slot_pa = seg.pa_base + (off >> 12) * 8;
                let walk = dcache.access(slot_pa).cycles + cfg.ptw_level_cycles;
                let ppn = mem
                    .read(slot_pa, 8)
                    .map_err(|_| Trap::new(access.page_fault(), va))?;
                if ppn == 0 {
                    return Err(Trap::new(access.page_fault(), va));
                }
                return Ok(Translation {
                    pa: (ppn << 12) | (off & 0xfff),
                    cycles: walk,
                });
            }
        }

        // 2. Bare translation.
        if mode == Mode::Machine || !satp.enabled {
            return Ok(Translation { pa: va, cycles: 0 });
        }

        // Sv39 requires bits 63..39 to be sign-extension of bit 38.
        let hi = va >> 38;
        if hi != 0 && hi != 0x3ff_ffff {
            return Err(Trap::new(access.page_fault(), va));
        }

        let vpn = (va >> 12) & ((1 << 27) - 1);

        // 3. TLB.
        if let Some(e) = self.tlb.lookup(vpn, satp.asid) {
            Self::check_perms(e.perms, access, mode, sum, mxr, va)?;
            let off_bits = 12 + 9 * e.level as u64;
            // e.ppn is superpage-aligned, so adding the in-superpage offset
            // is exact for 4K, 2M and 1G leaves alike.
            let pa = (e.ppn << 12) + (va & ((1 << off_bits) - 1));
            return Ok(Translation { pa, cycles: 0 });
        }

        // 4. Page walk.
        let mut cycles = 0;
        let mut table_ppn = satp.root_ppn;
        for level in (0..3u8).rev() {
            let idx = (vpn >> (9 * level as u64)) & 0x1ff;
            let pte_pa = (table_ppn << 12) + idx * 8;
            cycles += dcache.access(pte_pa).cycles + cfg.ptw_level_cycles;
            let entry = mem
                .read(pte_pa, 8)
                .map_err(|_| Trap::new(access.page_fault(), va))?;
            if entry & pte::V == 0 {
                return Err(Trap::new(access.page_fault(), va));
            }
            let is_leaf = entry & (pte::R | pte::X) != 0;
            let ppn = (entry >> 10) & ((1 << 44) - 1);
            if !is_leaf {
                if level == 0 {
                    return Err(Trap::new(access.page_fault(), va));
                }
                table_ppn = ppn;
                continue;
            }
            // Superpage alignment check.
            if level > 0 && ppn & ((1 << (9 * level as u64)) - 1) != 0 {
                return Err(Trap::new(access.page_fault(), va));
            }
            let mut perms = entry & 0xff;
            Self::check_perms(perms, access, mode, sum, mxr, va)?;
            // Hardware-managed A/D bits: set and write back.
            perms |= pte::A;
            if access == Access::Store {
                perms |= pte::D;
            }
            let updated = (entry & !0xffu64) | perms;
            if updated != entry {
                cycles += dcache.access(pte_pa).cycles;
                mem.write(pte_pa, 8, updated)
                    .map_err(|_| Trap::new(access.page_fault(), va))?;
            }
            self.walks += 1;
            // Store the superpage-aligned PPN; the hit path composes
            // pa = (ppn << 12) + (va mod superpage size).
            self.tlb.fill(vpn, level, satp.asid, ppn, perms);
            let off_bits = 12 + 9 * level as u64;
            return Ok(Translation {
                pa: (ppn << 12) + (va & ((1 << off_bits) - 1)),
                cycles,
            });
        }
        unreachable!("walk loop always returns");
    }

    fn check_perms(
        perms: u64,
        access: Access,
        mode: Mode,
        sum: bool,
        mxr: bool,
        va: u64,
    ) -> Result<(), Trap> {
        let fault = || Trap::new(access.page_fault(), va);
        let user_page = perms & pte::U != 0;
        match mode {
            Mode::User if !user_page => return Err(fault()),
            Mode::Supervisor if user_page && !sum => return Err(fault()),
            _ => {}
        }
        let ok = match access {
            Access::Fetch => perms & pte::X != 0 && !(mode == Mode::Supervisor && user_page),
            Access::Load => perms & pte::R != 0 || (mxr && perms & pte::X != 0),
            Access::Store => perms & pte::W != 0,
        };
        if ok {
            Ok(())
        } else {
            Err(fault())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DRAM_BASE;

    fn setup() -> (Mmu, Memory, Cache, MachineConfig) {
        let cfg = MachineConfig::rocket_u500();
        (
            Mmu::new(&cfg),
            Memory::new(cfg.dram_size),
            Cache::new(cfg.dcache),
            cfg,
        )
    }

    /// Build a 3-level mapping va -> pa with `perm_bits` at fixed table
    /// locations and return the satp.
    fn map_page(mem: &mut Memory, va: u64, pa: u64, perm_bits: u64) -> Satp {
        let root = DRAM_BASE + 0x10_0000;
        let l1 = DRAM_BASE + 0x10_1000;
        let l0 = DRAM_BASE + 0x10_2000;
        let vpn2 = (va >> 30) & 0x1ff;
        let vpn1 = (va >> 21) & 0x1ff;
        let vpn0 = (va >> 12) & 0x1ff;
        mem.write(root + vpn2 * 8, 8, ((l1 >> 12) << 10) | pte::V)
            .unwrap();
        mem.write(l1 + vpn1 * 8, 8, ((l0 >> 12) << 10) | pte::V)
            .unwrap();
        mem.write(l0 + vpn0 * 8, 8, ((pa >> 12) << 10) | perm_bits | pte::V)
            .unwrap();
        Satp {
            enabled: true,
            asid: 1,
            root_ppn: root >> 12,
        }
    }

    #[test]
    fn bare_mode_is_identity() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = Satp {
            enabled: false,
            asid: 0,
            root_ppn: 0,
        };
        let t = mmu
            .translate(
                0x1234,
                8,
                Access::Load,
                Mode::Machine,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap();
        assert_eq!(t.pa, 0x1234);
    }

    #[test]
    fn walk_then_tlb_hit() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = map_page(&mut mem, 0x4000_0000, DRAM_BASE + 0x2000, pte::R | pte::U);
        let t1 = mmu
            .translate(
                0x4000_0010,
                8,
                Access::Load,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap();
        assert_eq!(t1.pa, DRAM_BASE + 0x2010);
        assert!(t1.cycles > 0, "walk charged cycles");
        let t2 = mmu
            .translate(
                0x4000_0020,
                8,
                Access::Load,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap();
        assert_eq!(t2.pa, DRAM_BASE + 0x2020);
        assert_eq!(t2.cycles, 0, "TLB hit is free");
        assert_eq!(mmu.walks, 1);
    }

    #[test]
    fn store_to_readonly_page_faults() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = map_page(&mut mem, 0x4000_0000, DRAM_BASE + 0x2000, pte::R | pte::U);
        let e = mmu
            .translate(
                0x4000_0000,
                8,
                Access::Store,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap_err();
        assert_eq!(e.cause, Cause::StorePageFault);
    }

    #[test]
    fn user_page_blocked_in_smode_without_sum() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = map_page(&mut mem, 0x4000_0000, DRAM_BASE + 0x2000, pte::R | pte::U);
        assert!(mmu
            .translate(
                0x4000_0000,
                8,
                Access::Load,
                Mode::Supervisor,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_err());
        assert!(mmu
            .translate(
                0x4000_0000,
                8,
                Access::Load,
                Mode::Supervisor,
                satp,
                true,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_ok());
    }

    #[test]
    fn seg_window_overrides_page_table() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = map_page(&mut mem, 0x4000_0000, DRAM_BASE + 0x2000, pte::R | pte::U);
        mmu.seg_window = Some(SegWindow {
            va_base: 0x4000_0000,
            pa_base: DRAM_BASE + 0x9000,
            len: 4096,
            writable: true,
            paged: false,
        });
        let t = mmu
            .translate(
                0x4000_0008,
                8,
                Access::Store,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap();
        assert_eq!(t.pa, DRAM_BASE + 0x9008, "seg window wins over page table");
        assert_eq!(t.cycles, 0, "no walk, no TLB pressure");
    }

    #[test]
    fn seg_window_never_executes() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = Satp {
            enabled: false,
            asid: 0,
            root_ppn: 0,
        };
        mmu.seg_window = Some(SegWindow {
            va_base: 0x5000_0000,
            pa_base: DRAM_BASE,
            len: 4096,
            writable: false,
            paged: false,
        });
        let e = mmu
            .translate(
                0x5000_0000,
                4,
                Access::Fetch,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg,
            )
            .unwrap_err();
        assert_eq!(e.cause, Cause::InstPageFault);
    }

    #[test]
    fn readonly_seg_window_blocks_store() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = Satp {
            enabled: false,
            asid: 0,
            root_ppn: 0,
        };
        mmu.seg_window = Some(SegWindow {
            va_base: 0x5000_0000,
            pa_base: DRAM_BASE,
            len: 4096,
            writable: false,
            paged: false,
        });
        assert!(mmu
            .translate(
                0x5000_0000,
                8,
                Access::Store,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_err());
        assert!(mmu
            .translate(
                0x5000_0000,
                8,
                Access::Load,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_ok());
    }

    #[test]
    fn satp_round_trip() {
        let s = Satp {
            enabled: true,
            asid: 42,
            root_ppn: 0x80123,
        };
        assert_eq!(Satp::from_raw(s.to_raw()), s);
    }

    #[test]
    fn non_canonical_va_faults() {
        let (mut mmu, mut mem, mut dc, cfg) = setup();
        let satp = map_page(&mut mem, 0x4000_0000, DRAM_BASE + 0x2000, pte::R | pte::U);
        assert!(mmu
            .translate(
                0x0000_8000_0000_0000,
                8,
                Access::Load,
                Mode::User,
                satp,
                false,
                false,
                &mut mem,
                &mut dc,
                &cfg
            )
            .is_err());
    }
}
