//! Property test: every encoder the assembler offers produces a word the
//! decoder accepts (no encoder/decoder drift), checked over random
//! operands via execution-free decoding.
//!
//! Gated behind the off-by-default `proptest` feature: enabling it
//! requires adding the external `proptest` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rv64::inst::decode;
use rv64::Assembler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_encoder_decodes(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32,
                             imm in -2048i64..2048, shamt in 0u8..64) {
        let aligned = imm & !1;
        let mut a = Assembler::new(0x1000);
        // Emit one of everything (labels for the branch family).
        a.label("top");
        a.lui(rd, imm << 12);
        a.auipc(rd, imm << 12);
        a.jalr(rd, rs1, imm);
        a.beq(rs1, rs2, "top");
        a.bne(rs1, rs2, "top");
        a.blt(rs1, rs2, "top");
        a.bge(rs1, rs2, "top");
        a.bltu(rs1, rs2, "top");
        a.bgeu(rs1, rs2, "top");
        a.lb(rd, rs1, imm);
        a.lh(rd, rs1, aligned);
        a.lw(rd, rs1, imm);
        a.ld(rd, rs1, imm);
        a.lbu(rd, rs1, imm);
        a.lhu(rd, rs1, imm);
        a.lwu(rd, rs1, imm);
        a.sb(rs2, rs1, imm);
        a.sh(rs2, rs1, imm);
        a.sw(rs2, rs1, imm);
        a.sd(rs2, rs1, imm);
        a.addi(rd, rs1, imm);
        a.slti(rd, rs1, imm);
        a.sltiu(rd, rs1, imm);
        a.xori(rd, rs1, imm);
        a.ori(rd, rs1, imm);
        a.andi(rd, rs1, imm);
        a.slli(rd, rs1, shamt);
        a.srli(rd, rs1, shamt);
        a.srai(rd, rs1, shamt);
        a.addiw(rd, rs1, imm);
        a.add(rd, rs1, rs2);
        a.sub(rd, rs1, rs2);
        a.sll(rd, rs1, rs2);
        a.slt(rd, rs1, rs2);
        a.sltu(rd, rs1, rs2);
        a.xor(rd, rs1, rs2);
        a.srl(rd, rs1, rs2);
        a.sra(rd, rs1, rs2);
        a.or(rd, rs1, rs2);
        a.and(rd, rs1, rs2);
        a.mul(rd, rs1, rs2);
        a.divu(rd, rs1, rs2);
        a.remu(rd, rs1, rs2);
        a.lr_d(rd, rs1);
        a.lr_w(rd, rs1);
        a.sc_d(rd, rs2, rs1);
        a.sc_w(rd, rs2, rs1);
        a.amoswap_d(rd, rs2, rs1);
        a.amoadd_d(rd, rs2, rs1);
        a.amoadd_w(rd, rs2, rs1);
        a.amoor_d(rd, rs2, rs1);
        a.amoand_d(rd, rs2, rs1);
        a.ecall();
        a.ebreak();
        a.mret();
        a.sret();
        a.wfi();
        a.sfence_vma(rs1, rs2);
        a.fence();
        a.csrrw(rd, 0x340, rs1);
        a.csrrs(rd, 0x340, rs1);
        a.csrrc(rd, 0x340, rs1);
        for (i, word) in a.assemble().into_iter().enumerate() {
            prop_assert!(
                decode(word).is_some(),
                "word #{i} ({word:#010x}) failed to decode"
            );
        }
    }

    /// Disassembly never panics and never returns an empty string for
    /// arbitrary 32-bit words.
    #[test]
    fn disasm_total(word: u32) {
        let text = rv64::disasm::disasm(word);
        prop_assert!(!text.is_empty());
    }
}
