//! Property tests of the TLB against a reference map, and machine-level
//! timer-interrupt behaviour.
//!
//! Gated behind the off-by-default `proptest` feature: enabling it
//! requires adding the external `proptest` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rv64::csr::addr as csr;
use rv64::machine::{MCAUSE_TIMER, MTIE};
use rv64::mem::DRAM_BASE;
use rv64::tlb::{pte, Tlb};
use rv64::{reg, Assembler, Exit, Machine, MachineConfig};
use std::collections::HashMap;

proptest! {
    /// A tagged TLB never returns a translation filled under a different
    /// ASID, and always returns the latest fill for (vpn, asid) while the
    /// entry is resident.
    #[test]
    fn tagged_tlb_matches_reference(ops in prop::collection::vec(
        (0u64..64, 0u16..4, 0u64..1 << 20), 1..200)) {
        // Large TLB so nothing is evicted — isolates tagging semantics.
        let mut tlb = Tlb::new(1024, true);
        let mut reference: HashMap<(u64, u16), u64> = HashMap::new();
        for (vpn, asid, ppn) in ops {
            tlb.fill(vpn, 0, asid, ppn, pte::V | pte::R);
            reference.insert((vpn, asid), ppn);
            // Probe a few keys.
            for probe_asid in 0..4u16 {
                let got = tlb.lookup(vpn, probe_asid).map(|e| e.ppn);
                let want = reference.get(&(vpn, probe_asid)).copied();
                prop_assert_eq!(got, want, "vpn {} asid {}", vpn, probe_asid);
            }
        }
    }

    /// flush_asid removes exactly that ASID's entries.
    #[test]
    fn flush_asid_is_exact(fills in prop::collection::vec((0u64..32, 0u16..4), 1..64),
                           victim in 0u16..4) {
        let mut tlb = Tlb::new(256, true);
        for (vpn, asid) in &fills {
            tlb.fill(*vpn, 0, *asid, 0x100 + vpn, pte::V);
        }
        tlb.flush_asid(victim);
        for (vpn, asid) in &fills {
            let hit = tlb.lookup(*vpn, *asid).is_some();
            if *asid == victim {
                prop_assert!(!hit, "victim asid survived");
            }
        }
    }
}

#[test]
fn timer_interrupt_fires_and_resumes() {
    // Guest: M-mode handler counts ticks, re-arms twice, then lets the
    // loop finish.
    let mut a = Assembler::new(DRAM_BASE);
    a.li(reg::T0, (DRAM_BASE + 0x1000) as i64);
    a.csrw(csr::MTVEC, reg::T0);
    a.li(reg::T1, MTIE as i64);
    a.csrw(csr::MIE, reg::T1);
    // mstatus.MIE = 1 (bit 3).
    a.li(reg::T1, 8);
    a.csrrs(reg::ZERO, csr::MSTATUS, reg::T1);
    // Arm the timer 200 cycles out.
    a.csrr(reg::T1, csr::CYCLE);
    a.addi(reg::T1, reg::T1, 200);
    a.csrw(csr::MTIMECMP, reg::T1);
    // Busy loop.
    a.li(reg::S1, 2000);
    a.label("loop");
    a.addi(reg::S1, reg::S1, -1);
    a.bne(reg::S1, reg::ZERO, "loop");
    a.ebreak();
    let body = a.assemble();

    // Handler: s2 += 1; if s2 < 3 re-arm, else disarm; mret.
    let mut h = Assembler::new(DRAM_BASE + 0x1000);
    h.addi(reg::S2, reg::S2, 1);
    h.li(reg::T2, 3);
    h.bge(reg::S2, reg::T2, "disarm");
    h.csrr(reg::T1, csr::CYCLE);
    h.addi(reg::T1, reg::T1, 200);
    h.csrw(csr::MTIMECMP, reg::T1);
    h.mret();
    h.label("disarm");
    h.csrw(csr::MTIMECMP, reg::ZERO);
    h.mret();
    let handler = h.assemble();

    let mut m = Machine::new(MachineConfig::rocket_u500());
    m.load_program(&body);
    m.load_program_at(DRAM_BASE + 0x1000, &handler);
    let r = m.run(100_000).unwrap();
    assert_eq!(r.exit, Exit::Break, "loop completed despite interrupts");
    assert_eq!(m.core.cpu.x(reg::S2), 3, "handler ran exactly three times");
    assert_eq!(m.core.cpu.csr.mcause, MCAUSE_TIMER);
}

#[test]
fn masked_timer_never_fires() {
    let mut a = Assembler::new(DRAM_BASE);
    // mtimecmp armed but MTIE clear: no interrupt.
    a.li(reg::T1, 100);
    a.csrw(csr::MTIMECMP, reg::T1);
    a.li(reg::S1, 500);
    a.label("loop");
    a.addi(reg::S1, reg::S1, -1);
    a.bne(reg::S1, reg::ZERO, "loop");
    a.ebreak();
    let mut m = Machine::new(MachineConfig::rocket_u500());
    m.load_program(&a.assemble());
    let r = m.run(100_000).unwrap();
    assert_eq!(r.exit, Exit::Break);
    assert_eq!(m.core.cpu.csr.mcause, 0, "no interrupt was delivered");
}
