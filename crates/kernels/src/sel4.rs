//! The seL4 IPC model: fast path, slow path, and shared-memory long
//! messages, with the phase structure of Table 1.
//!
//! §2.2's rules decide the path:
//! * ≤ 32 B — registers, fast path (Table 1: 664 cycles one-way);
//! * 32–120 B — IPC buffer, **slow path** (measured 2182 cycles at 64 B);
//! * > 120 B — user shared memory; the paper evaluates both the insecure
//!   > one-copy and the TOCTTOU-safe two-copy configuration (Figure 7/8's
//!   > `seL4-onecopy` / `seL4-twocopy`).

use simos::cost::CostModel;
use simos::ipc::{IpcCost, IpcMechanism};

/// Long-message strategy (Figure 7/8 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sel4Transfer {
    /// One copy into shared memory (vulnerable to TOCTTOU, §2.2).
    OneCopy,
    /// Copy in and defensively copy out (safe).
    TwoCopy,
}

/// The seL4 model.
#[derive(Debug, Clone)]
pub struct Sel4 {
    cost: CostModel,
    transfer: Sel4Transfer,
    cross_core: bool,
}

/// Register-message limit (§2.2).
pub const REG_MSG_MAX: u64 = 32;
/// IPC-buffer limit (§2.2).
pub const BUF_MSG_MAX: u64 = 120;

impl Sel4 {
    /// Same-core seL4 with the given long-message strategy.
    pub fn new(transfer: Sel4Transfer) -> Self {
        Sel4 {
            cost: CostModel::u500(),
            transfer,
            cross_core: false,
        }
    }

    /// Cross-core variant: adds IPI + remote scheduling per hop.
    pub fn cross_core(transfer: Sel4Transfer) -> Self {
        Sel4 {
            cross_core: true,
            ..Self::new(transfer)
        }
    }

    /// The Table 1 phase breakdown for a one-way IPC of `bytes`.
    pub fn table1_phases(&self, bytes: u64) -> Vec<(&'static str, u64)> {
        let c = &self.cost;
        let transfer = self.transfer_cycles(bytes);
        vec![
            ("Trap", c.trap),
            ("IPC Logic", c.ipc_logic),
            ("Process Switch", c.process_switch),
            ("Restore", c.restore),
            ("Message Transfer", transfer),
        ]
    }

    fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes <= REG_MSG_MAX {
            0 // carried in registers during the switch
        } else if bytes <= BUF_MSG_MAX {
            // Slow path dominates; the copy itself is small.
            self.cost.copy_cycles(bytes) * 2
        } else {
            let copies = match self.transfer {
                Sel4Transfer::OneCopy => 1,
                Sel4Transfer::TwoCopy => 2,
            };
            copies * self.cost.copy_cycles(bytes)
        }
    }

    fn copies(&self, bytes: u64) -> u64 {
        if bytes <= REG_MSG_MAX {
            0
        } else if bytes <= BUF_MSG_MAX {
            2 * bytes
        } else {
            match self.transfer {
                Sel4Transfer::OneCopy => bytes,
                Sel4Transfer::TwoCopy => 2 * bytes,
            }
        }
    }
}

impl IpcMechanism for Sel4 {
    fn name(&self) -> String {
        let base = match self.transfer {
            Sel4Transfer::OneCopy => "seL4-onecopy",
            Sel4Transfer::TwoCopy => "seL4-twocopy",
        };
        if self.cross_core {
            format!("{base}+xcore")
        } else {
            base.to_string()
        }
    }

    fn oneway(&self, bytes: u64) -> IpcCost {
        let c = &self.cost;
        let mut cycles = c.sel4_fastpath_base();
        if bytes > REG_MSG_MAX && bytes <= BUF_MSG_MAX {
            cycles += c.slowpath_extra;
        }
        cycles += self.transfer_cycles(bytes);
        if self.cross_core {
            cycles += c.cross_core_base;
        }
        IpcCost {
            cycles,
            copied_bytes: self.copies(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastpath_0b_is_table1_sum() {
        let s = Sel4::new(Sel4Transfer::OneCopy);
        assert_eq!(s.oneway(0).cycles, 664);
        assert_eq!(s.oneway(32).cycles, 664, "register messages are free");
    }

    #[test]
    fn medium_messages_take_slow_path() {
        let s = Sel4::new(Sel4Transfer::OneCopy);
        let c = s.oneway(64).cycles;
        // §2.2 measured 2182 cycles for a 64 B IPC.
        assert!((2100..2350).contains(&c), "64B slow path: {c}");
    }

    #[test]
    fn large_messages_scale_with_copies() {
        let one = Sel4::new(Sel4Transfer::OneCopy).oneway(4096);
        let two = Sel4::new(Sel4Transfer::TwoCopy).oneway(4096);
        assert_eq!(one.cycles, 664 + 4010);
        assert_eq!(two.cycles, 664 + 2 * 4010);
        assert_eq!(one.copied_bytes, 4096);
        assert_eq!(two.copied_bytes, 8192);
    }

    #[test]
    fn table1_phases_sum_to_oneway() {
        let s = Sel4::new(Sel4Transfer::OneCopy);
        for bytes in [0u64, 4096] {
            let sum: u64 = s.table1_phases(bytes).iter().map(|(_, c)| c).sum();
            assert_eq!(sum, s.oneway(bytes).cycles);
        }
    }

    #[test]
    fn cross_core_adds_constant() {
        let same = Sel4::new(Sel4Transfer::OneCopy).oneway(0).cycles;
        let cross = Sel4::cross_core(Sel4Transfer::OneCopy).oneway(0).cycles;
        assert_eq!(cross - same, CostModel::u500().cross_core_base);
    }
}
