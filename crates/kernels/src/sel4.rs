//! The seL4 IPC model: fast path, slow path, and shared-memory long
//! messages, with the phase structure of Table 1.
//!
//! §2.2's rules decide the path:
//! * ≤ 32 B — registers, fast path (Table 1: 664 cycles one-way);
//! * 32–120 B — IPC buffer, **slow path** (measured 2182 cycles at 64 B);
//! * > 120 B — user shared memory; the paper evaluates both the insecure
//!   > one-copy and the TOCTTOU-safe two-copy configuration (Figure 7/8's
//!   > `seL4-onecopy` / `seL4-twocopy`).
//!
//! `oneway` returns an [`Invocation`] whose ledger *is* Table 1: Trap /
//! IPC Logic / Process Switch / Restore / Message Transfer, plus
//! Schedule on the slow path and Cross-core for the remote variant.

use simos::cost::CostModel;
use simos::ipc::{oneway_invocation, IpcSystem};
use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};

/// Long-message strategy (Figure 7/8 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sel4Transfer {
    /// One copy into shared memory (vulnerable to TOCTTOU, §2.2).
    OneCopy,
    /// Copy in and defensively copy out (safe).
    TwoCopy,
}

/// The seL4 model.
#[derive(Debug, Clone)]
pub struct Sel4 {
    cost: CostModel,
    transfer: Sel4Transfer,
    cross_core: bool,
}

/// Register-message limit (§2.2).
pub const REG_MSG_MAX: u64 = 32;
/// IPC-buffer limit (§2.2).
pub const BUF_MSG_MAX: u64 = 120;

impl Sel4 {
    /// Same-core seL4 with the given long-message strategy.
    pub fn new(transfer: Sel4Transfer) -> Self {
        Sel4 {
            cost: CostModel::u500(),
            transfer,
            cross_core: false,
        }
    }

    /// Cross-core variant: adds IPI + remote scheduling per hop.
    pub fn cross_core(transfer: Sel4Transfer) -> Self {
        Sel4 {
            cross_core: true,
            ..Self::new(transfer)
        }
    }

    fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes <= REG_MSG_MAX {
            0 // carried in registers during the switch
        } else if bytes <= BUF_MSG_MAX {
            // Slow path dominates; the copy itself is small.
            self.cost.copy_cycles(bytes) * 2
        } else {
            let copies = match self.transfer {
                Sel4Transfer::OneCopy => 1,
                Sel4Transfer::TwoCopy => 2,
            };
            copies * self.cost.copy_cycles(bytes)
        }
    }

    fn copies(&self, bytes: u64) -> u64 {
        if bytes <= REG_MSG_MAX {
            0
        } else if bytes <= BUF_MSG_MAX {
            2 * bytes
        } else {
            match self.transfer {
                Sel4Transfer::OneCopy => bytes,
                Sel4Transfer::TwoCopy => 2 * bytes,
            }
        }
    }
}

impl IpcSystem for Sel4 {
    fn name(&self) -> String {
        let base = match self.transfer {
            Sel4Transfer::OneCopy => "seL4-onecopy",
            Sel4Transfer::TwoCopy => "seL4-twocopy",
        };
        if self.cross_core {
            format!("{base}+xcore")
        } else {
            base.to_string()
        }
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        c.sel4_fastpath_into(out);
        if bytes > REG_MSG_MAX && bytes <= BUF_MSG_MAX {
            // The slow path runs the full scheduler and endpoint logic.
            out.charge(Phase::Schedule, c.slowpath_extra);
        }
        out.charge(Phase::Transfer, self.transfer_cycles(bytes));
        if self.cross_core {
            out.charge(Phase::CrossCore, c.cross_core_base);
        }
        // Software-equivalent temporal mitigations: generation-table and
        // flow-tag lookups in the kernel IPC path, buffer scrub per byte.
        self.cost.charge_hardening(false, msg_len, opts, out);
        self.copies(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastpath_0b_is_table1_sum() {
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        assert_eq!(s.oneway(0, &InvokeOpts::call()).total, 664);
        assert_eq!(
            s.oneway(32, &InvokeOpts::call()).total,
            664,
            "register messages are free"
        );
    }

    #[test]
    fn medium_messages_take_slow_path() {
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        let c = s.oneway(64, &InvokeOpts::call()).total;
        // §2.2 measured 2182 cycles for a 64 B IPC.
        assert!((2100..2350).contains(&c), "64B slow path: {c}");
    }

    #[test]
    fn large_messages_scale_with_copies() {
        let one = Sel4::new(Sel4Transfer::OneCopy).oneway(4096, &InvokeOpts::call());
        let two = Sel4::new(Sel4Transfer::TwoCopy).oneway(4096, &InvokeOpts::call());
        assert_eq!(one.total, 664 + 4010);
        assert_eq!(two.total, 664 + 2 * 4010);
        assert_eq!(one.copied_bytes, 4096);
        assert_eq!(two.copied_bytes, 8192);
    }

    #[test]
    fn ledger_is_table1() {
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        for bytes in [0usize, 4096] {
            let inv = s.oneway(bytes, &InvokeOpts::call());
            assert_eq!(inv.ledger.get(Phase::Trap), 107);
            assert_eq!(inv.ledger.get(Phase::IpcLogic), 212);
            assert_eq!(inv.ledger.get(Phase::Switch), 146);
            assert_eq!(inv.ledger.get(Phase::Restore), 199);
            assert_eq!(inv.total, inv.ledger.total());
            // Transfer is present even at 0 B (Table 1 prints the row).
            assert!(inv
                .ledger
                .spans()
                .iter()
                .any(|(p, _)| *p == Phase::Transfer));
        }
        let inv4k = s.oneway(4096, &InvokeOpts::call());
        assert_eq!(inv4k.ledger.get(Phase::Transfer), 4010);
    }

    #[test]
    fn cross_core_adds_constant() {
        let same = Sel4::new(Sel4Transfer::OneCopy)
            .oneway(0, &InvokeOpts::call())
            .total;
        let cross = Sel4::cross_core(Sel4Transfer::OneCopy)
            .oneway(0, &InvokeOpts::call())
            .total;
        assert_eq!(cross - same, CostModel::u500().cross_core_base);
        let inv = Sel4::cross_core(Sel4Transfer::OneCopy).oneway(0, &InvokeOpts::call());
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            CostModel::u500().cross_core_base
        );
    }
}
