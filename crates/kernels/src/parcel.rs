//! Binder `Parcel` marshalling (§4.3): the typed container Android uses
//! for transaction arguments ("the client prepares a method code … along
//! with marshaled data (Parcels)").
//!
//! A real, self-describing wire format — each value is tagged — so the
//! `binder_surface` scenario moves genuinely structured data, and the
//! XPC port can place the same bytes in a relay segment instead of the
//! transaction buffer.

/// A marshalled value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// UTF-8 string.
    Str(String),
    /// Binary blob (surface pixels, bitmaps...).
    Blob(Vec<u8>),
    /// File descriptor (e.g. an ashmem region), by number.
    Fd(u32),
}

const TAG_I32: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BLOB: u8 = 4;
const TAG_FD: u8 = 5;

/// Errors from [`Parcel::read_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParcelError {
    /// Input ended inside a value.
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
    /// String payload was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ParcelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParcelError::Truncated => write!(f, "parcel truncated"),
            ParcelError::BadTag(t) => write!(f, "unknown parcel tag {t}"),
            ParcelError::BadUtf8 => write!(f, "parcel string not utf-8"),
        }
    }
}

impl std::error::Error for ParcelError {}

/// A parcel under construction / being read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parcel {
    bytes: Vec<u8>,
}

impl Parcel {
    /// An empty parcel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap received bytes for reading.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Parcel { bytes }
    }

    /// The wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wire size in bytes (what the transaction buffer / relay segment
    /// must carry).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Append a value.
    pub fn write(&mut self, v: &Value) {
        match v {
            Value::I32(x) => {
                self.bytes.push(TAG_I32);
                self.bytes.extend_from_slice(&x.to_le_bytes());
            }
            Value::I64(x) => {
                self.bytes.push(TAG_I64);
                self.bytes.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                self.bytes.push(TAG_STR);
                self.bytes
                    .extend_from_slice(&(s.len() as u32).to_le_bytes());
                self.bytes.extend_from_slice(s.as_bytes());
            }
            Value::Blob(b) => {
                self.bytes.push(TAG_BLOB);
                self.bytes
                    .extend_from_slice(&(b.len() as u32).to_le_bytes());
                self.bytes.extend_from_slice(b);
            }
            Value::Fd(fd) => {
                self.bytes.push(TAG_FD);
                self.bytes.extend_from_slice(&fd.to_le_bytes());
            }
        }
    }

    /// Decode every value.
    ///
    /// # Errors
    ///
    /// [`ParcelError`] on malformed input (the server must never trust the
    /// client's bytes).
    pub fn read_all(&self) -> Result<Vec<Value>, ParcelError> {
        let b = &self.bytes;
        let mut out = Vec::new();
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<usize, ParcelError> {
            let start = *i;
            *i = i.checked_add(n).ok_or(ParcelError::Truncated)?;
            if *i > b.len() {
                return Err(ParcelError::Truncated);
            }
            Ok(start)
        };
        while i < b.len() {
            let tag = b[i];
            i += 1;
            match tag {
                TAG_I32 => {
                    let s = take(&mut i, 4)?;
                    out.push(Value::I32(i32::from_le_bytes(
                        b[s..s + 4].try_into().unwrap(),
                    )));
                }
                TAG_I64 => {
                    let s = take(&mut i, 8)?;
                    out.push(Value::I64(i64::from_le_bytes(
                        b[s..s + 8].try_into().unwrap(),
                    )));
                }
                TAG_STR => {
                    let s = take(&mut i, 4)?;
                    let n = u32::from_le_bytes(b[s..s + 4].try_into().unwrap()) as usize;
                    let s = take(&mut i, n)?;
                    let text =
                        std::str::from_utf8(&b[s..s + n]).map_err(|_| ParcelError::BadUtf8)?;
                    out.push(Value::Str(text.to_string()));
                }
                TAG_BLOB => {
                    let s = take(&mut i, 4)?;
                    let n = u32::from_le_bytes(b[s..s + 4].try_into().unwrap()) as usize;
                    let s = take(&mut i, n)?;
                    out.push(Value::Blob(b[s..s + n].to_vec()));
                }
                TAG_FD => {
                    let s = take(&mut i, 4)?;
                    out.push(Value::Fd(u32::from_le_bytes(
                        b[s..s + 4].try_into().unwrap(),
                    )));
                }
                t => return Err(ParcelError::BadTag(t)),
            }
        }
        Ok(out)
    }
}

/// The §5.5 surface-compositor transaction: build the Parcel the window
/// manager receives (method code + surface metadata + pixel payload).
pub fn surface_transaction(width: u32, height: u32, pixels: &[u8]) -> Parcel {
    let mut p = Parcel::new();
    p.write(&Value::I32(42)); // method code: drawSurface
    p.write(&Value::Str("com.example.surface".into()));
    p.write(&Value::I32(width as i32));
    p.write(&Value::I32(height as i32));
    p.write(&Value::Blob(pixels.to_vec()));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut p = Parcel::new();
        let vals = vec![
            Value::I32(-7),
            Value::I64(1 << 40),
            Value::Str("héllo".into()),
            Value::Blob(vec![0, 255, 3]),
            Value::Fd(11),
        ];
        for v in &vals {
            p.write(v);
        }
        let back = Parcel::from_bytes(p.as_bytes().to_vec());
        assert_eq!(back.read_all().unwrap(), vals);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut p = Parcel::new();
        p.write(&Value::Blob(vec![1; 100]));
        let mut cut = p.as_bytes().to_vec();
        cut.truncate(20);
        assert_eq!(
            Parcel::from_bytes(cut).read_all(),
            Err(ParcelError::Truncated)
        );
    }

    #[test]
    fn bad_tag_is_rejected() {
        assert_eq!(
            Parcel::from_bytes(vec![99]).read_all(),
            Err(ParcelError::BadTag(99))
        );
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut bytes = vec![3u8]; // TAG_STR
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            Parcel::from_bytes(bytes).read_all(),
            Err(ParcelError::BadUtf8)
        );
    }

    #[test]
    fn length_overflow_is_rejected() {
        // A blob claiming u32::MAX bytes must not overflow the cursor.
        let mut bytes = vec![4u8]; // TAG_BLOB
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        assert_eq!(
            Parcel::from_bytes(bytes).read_all(),
            Err(ParcelError::Truncated)
        );
    }

    #[test]
    fn surface_transaction_shape() {
        let p = surface_transaction(64, 32, &[7u8; 64 * 32]);
        let vals = p.read_all().unwrap();
        assert_eq!(vals[0], Value::I32(42));
        assert_eq!(vals[2], Value::I32(64));
        assert_eq!(vals[3], Value::I32(32));
        match &vals[4] {
            Value::Blob(b) => assert_eq!(b.len(), 64 * 32),
            other => panic!("{other:?}"),
        }
        assert!(p.len() > 64 * 32, "payload dominates the wire size");
    }
}
