//! The XPC-accelerated IPC model: kernel-bypass `xcall`/`xret` plus
//! relay-segment handover, usable as the `-XPC` variant of any ported
//! kernel (seL4-XPC, Zircon-XPC).
//!
//! One-way cost is the Figure 5 decomposition: caller trampoline +
//! `xcall` + post-switch TLB refills; the reply leg (selected via
//! [`InvokeOpts::reply`]) pays `xret` + TLB. Messages ride the relay
//! segment regardless of size — zero copies, so the cost is *flat* in
//! message size, which is where the 5–37× (same-core) and 81–141×
//! (cross-core) bands of §5.2 come from.

use simos::cost::CostModel;
use simos::ipc::{amortized_batch_into, oneway_invocation, EngineCacheStats, IpcSystem};
use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};

/// The XPC IPC model.
#[derive(Debug, Clone)]
pub struct XpcIpc {
    cost: CostModel,
    label: &'static str,
    /// Full (mutually distrusting) or partial caller context save.
    pub full_ctx: bool,
    /// Tagged TLB removes the post-switch refill penalty.
    pub tagged_tlb: bool,
    /// Engine-cache counters accumulated by batched submissions
    /// (mirrors `xpc-engine`'s `XpcStats`).
    pub stats: EngineCacheStats,
}

impl XpcIpc {
    /// The seL4-XPC variant (paper default: full context, untagged TLB).
    pub fn sel4_xpc() -> Self {
        XpcIpc {
            cost: CostModel::u500(),
            label: "seL4-XPC",
            full_ctx: true,
            tagged_tlb: false,
            stats: EngineCacheStats::default(),
        }
    }

    /// The Zircon-XPC variant (same engine path).
    pub fn zircon_xpc() -> Self {
        XpcIpc {
            label: "Zircon-XPC",
            ..Self::sel4_xpc()
        }
    }

    /// A custom-labelled configuration (ablation benches).
    pub fn custom(label: &'static str, full_ctx: bool, tagged_tlb: bool) -> Self {
        XpcIpc {
            label,
            full_ctx,
            tagged_tlb,
            ..Self::sel4_xpc()
        }
    }

    /// Cross-core: the migrating-thread model runs the server's code on
    /// the client's core, so the cost is unchanged (§5.2 "Multi-core
    /// IPC") — provided for symmetry with the baselines.
    pub fn cross_core(self) -> Self {
        self
    }
}

impl IpcSystem for XpcIpc {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        if opts.reply {
            // Return leg: xret restores the caller's context directly
            // (the link-stack entry, not the x-entry table, so sharding
            // never touches it).
            out.charge(Phase::Xret, self.cost.xret);
            if !self.tagged_tlb {
                out.charge(Phase::TlbRefill, self.cost.tlb_refill);
            }
        } else {
            self.cost
                .xpc_oneway_into(self.full_ctx, self.tagged_tlb, out);
            if opts.shard_dist > 0 {
                // Sharded x-entry table: this uncached call leg resolves
                // its x-entry from the callee socket's shard,
                // `shard_dist` units across the interconnect.
                out.charge(
                    Phase::ShardMiss,
                    self.cost.xentry_shard_fetch * opts.shard_dist,
                );
                self.stats.shard_misses += 1;
            }
        }
        // Temporal mitigations at engine rates: the epoch compare rides
        // the xcall cap walk, the flow tag rides the linkage record, and
        // zero-on-handover scrubs the relay window before transfer.
        self.cost.charge_hardening(true, msg_len, opts, out);
        // Relay segment: the payload is handed over, never copied.
        0
    }

    fn supports_handover(&self) -> bool {
        true
    }

    /// §5.2 "Multi-core IPC": `xcall` migrates the calling thread into
    /// the server's address space on the *caller's* core — no IPI, no
    /// remote wakeup — so the `CrossCore` adapter surcharges it zero.
    fn migrating_threads(&self) -> bool {
        true
    }

    /// Repeat calls of a batch skip the caller trampoline entry (the
    /// context frame stays set up for the burst) and hit the engine's
    /// one-entry x-entry cache, paying `xcall_cached` instead of the full
    /// uncached fetch (Figure 5's "+Engine Cache" bar) — which also means
    /// they never consult the x-entry table, so a remote-shard fetch is
    /// paid once per burst, not per call. Per-call TLB refill and
    /// relay-segment transfer are untouched — every call still switches
    /// address spaces and hands its payload over.
    fn amortizable_cycles(&self, phase: Phase, first_cycles: u64, _opts: &InvokeOpts) -> u64 {
        match phase {
            Phase::Trampoline | Phase::ShardMiss => first_cycles,
            Phase::Xcall => self.cost.xcall.saturating_sub(self.cost.xcall_cached),
            _ => 0,
        }
    }

    /// A fused program is one submission: the first hop pays the full
    /// `xcall` entry (trampoline + uncached fetch + TLB), and every
    /// continuation hop chains server-to-server on the already-migrated
    /// thread — engine-cached `xcall` (6) plus the address-space switch's
    /// TLB refill, with no trampoline and no `xret` back to the client.
    /// Continuation x-entries ride the engine cache, so a remote shard is
    /// consulted only by the entry hop.
    fn fused_hop_into(
        &mut self,
        hop_index: u64,
        msg_len: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        if hop_index == 0 {
            return self.oneway_into(msg_len, opts, out);
        }
        out.charge(Phase::Xcall, self.cost.xcall_cached);
        if !self.tagged_tlb {
            out.charge(Phase::TlbRefill, self.cost.tlb_refill);
        }
        self.stats.cache_hits += 1;
        // Continuation xcalls still re-check epochs / stamp flow tags /
        // scrub before handing the relay window on.
        self.cost.charge_hardening(true, msg_len, opts, out);
        // Relay segment: handed over hop to hop, never copied.
        0
    }

    /// The client enters the kernel-bypass path once per program — the
    /// chained hops never return to it (crossings-per-request == 1).
    fn fused_crossings(&self, _hops: u64) -> u64 {
        1
    }

    fn invoke_batch_into(
        &mut self,
        calls: u64,
        bytes_each: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        // Call legs of a burst populate the engine cache once and hit it
        // on every repeat; reply legs (`xret`) never consult it.
        if calls > 1 && !opts.reply {
            self.stats.prefetches += 1;
            self.stats.cache_hits += calls - 1;
        }
        amortized_batch_into(self, calls, bytes_each, opts, out)
    }

    fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sel4::{Sel4, Sel4Transfer};

    fn call(sys: &mut impl IpcSystem, bytes: usize) -> u64 {
        sys.oneway(bytes, &InvokeOpts::call()).total
    }

    #[test]
    fn flat_in_message_size() {
        let mut x = XpcIpc::sel4_xpc();
        assert_eq!(call(&mut x, 0), call(&mut x, 32 << 20));
        assert_eq!(x.oneway(4096, &InvokeOpts::call()).copied_bytes, 0);
    }

    #[test]
    fn default_oneway_is_134() {
        // 76 trampoline + 18 xcall + 40 TLB (Figure 5, Full-Cxt +
        // non-blocking link stack).
        let inv = XpcIpc::sel4_xpc().oneway(0, &InvokeOpts::call());
        assert_eq!(inv.total, 134);
        assert_eq!(inv.ledger.get(Phase::Trampoline), 76);
        assert_eq!(inv.ledger.get(Phase::Xcall), 18);
        assert_eq!(inv.ledger.get(Phase::TlbRefill), 40);
    }

    #[test]
    fn reply_leg_pays_xret() {
        let inv = XpcIpc::sel4_xpc().oneway(0, &InvokeOpts::reply_leg());
        assert_eq!(inv.ledger.get(Phase::Xret), 23);
        assert_eq!(inv.total, 23 + 40);
        let tagged = XpcIpc::custom("t", true, true).oneway(0, &InvokeOpts::reply_leg());
        assert_eq!(tagged.total, 23);
    }

    #[test]
    fn fig6_speedup_band_same_core() {
        let mut x = XpcIpc::sel4_xpc();
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        let speedup_0 = call(&mut s, 0) as f64 / call(&mut x, 0) as f64;
        let speedup_4k = call(&mut s, 4096) as f64 / call(&mut x, 4096) as f64;
        assert!((4.5..6.0).contains(&speedup_0), "{speedup_0}");
        assert!((30.0..40.0).contains(&speedup_4k), "{speedup_4k}");
    }

    #[test]
    fn fig6_speedup_band_cross_core() {
        let mut x = XpcIpc::sel4_xpc().cross_core();
        let mut s = Sel4::cross_core(Sel4Transfer::TwoCopy);
        let small = call(&mut s, 0) as f64 / call(&mut x, 0) as f64;
        let large = call(&mut s, 4096) as f64 / call(&mut x, 4096) as f64;
        assert!((70.0..95.0).contains(&small), "≈81x small: {small}");
        assert!((130.0..155.0).contains(&large), "≈141x at 4KB: {large}");
    }

    #[test]
    fn handover_advertised() {
        assert!(XpcIpc::sel4_xpc().supports_handover());
    }

    #[test]
    fn batched_calls_hit_the_engine_cache() {
        let mut x = XpcIpc::sel4_xpc();
        let inv = x.invoke_batch(64, 4096, &InvokeOpts::call());
        // First call: 76 trampoline + 18 xcall + 40 TLB. Repeats: no
        // trampoline, cached xcall (6), full TLB refill = 46 each.
        assert_eq!(inv.ledger.get(Phase::Trampoline), 76);
        assert_eq!(inv.ledger.get(Phase::Xcall), 18 + 63 * 6);
        assert_eq!(inv.ledger.get(Phase::TlbRefill), 64 * 40);
        assert_eq!(inv.total, 134 + 63 * 46);
        assert_eq!(inv.copied_bytes, 0, "relay segment: still zero copies");
        assert_eq!(
            x.engine_cache_stats(),
            Some(EngineCacheStats {
                prefetches: 1,
                cache_hits: 63,
                shard_misses: 0,
            })
        );
    }

    #[test]
    fn remote_shard_lookup_is_priced_on_uncached_call_legs() {
        let mut x = XpcIpc::sel4_xpc();
        let local = x.oneway(0, &InvokeOpts::call());
        let remote = x.oneway(0, &InvokeOpts::call().at_shard_distance(2));
        // One cache-line pull per distance unit: 2 × 50.
        assert_eq!(remote.ledger.get(Phase::ShardMiss), 100);
        assert_eq!(remote.total, local.total + 100);
        // Reply legs walk the link stack, never the x-entry table.
        let reply = x.oneway(0, &InvokeOpts::reply_leg().at_shard_distance(2));
        assert_eq!(reply.ledger.get(Phase::ShardMiss), 0);
        assert_eq!(
            x.engine_cache_stats().unwrap().shard_misses,
            1,
            "only the uncached call leg missed the shard"
        );
    }

    #[test]
    fn batches_pay_the_shard_fetch_once() {
        let mut x = XpcIpc::sel4_xpc();
        let opts = InvokeOpts::call().at_shard_distance(3);
        let inv = x.invoke_batch(64, 0, &opts);
        // The first call fetches the x-entry from the remote shard; the
        // 63 repeats hit the engine cache and skip the table entirely.
        assert_eq!(inv.ledger.get(Phase::ShardMiss), 3 * 50);
        let stats = x.engine_cache_stats().unwrap();
        assert_eq!(stats.shard_misses, 1);
        assert_eq!(stats.cache_hits, 63);
        // Amortization aside, a remote batch still costs strictly more
        // than a local one.
        let local = XpcIpc::sel4_xpc().invoke_batch(64, 0, &InvokeOpts::call());
        assert_eq!(inv.total, local.total + 3 * 50);
    }

    #[test]
    fn batch_of_one_neither_amortizes_nor_counts_hits() {
        let mut x = XpcIpc::sel4_xpc();
        let single = x.invoke_batch(1, 0, &InvokeOpts::call());
        assert_eq!(single, XpcIpc::sel4_xpc().oneway(0, &InvokeOpts::call()));
        assert_eq!(
            x.engine_cache_stats(),
            Some(EngineCacheStats::default()),
            "a lone call is not a burst"
        );
    }

    #[test]
    fn reply_legs_do_not_touch_the_engine_cache() {
        let mut x = XpcIpc::sel4_xpc();
        let inv = x.invoke_batch(8, 0, &InvokeOpts::reply_leg());
        // xret has no cached variant: 8 full reply legs.
        assert_eq!(inv.total, 8 * (23 + 40));
        assert_eq!(x.engine_cache_stats(), Some(EngineCacheStats::default()));
    }

    #[test]
    fn fused_continuation_hops_pay_only_cached_xcall_plus_tlb() {
        let mut x = XpcIpc::sel4_xpc();
        let mut out = CycleLedger::new();
        // Entry hop: full uncached path (76 + 18 + 40).
        assert_eq!(x.fused_hop_into(0, 4096, &InvokeOpts::call(), &mut out), 0);
        assert_eq!(out.total(), 134);
        out.clear();
        // Continuation hop: cached xcall + TLB, no trampoline, no xret.
        assert_eq!(x.fused_hop_into(1, 4096, &InvokeOpts::call(), &mut out), 0);
        assert_eq!(out.get(Phase::Xcall), 6);
        assert_eq!(out.get(Phase::TlbRefill), 40);
        assert_eq!(out.total(), 46);
        assert_eq!(x.engine_cache_stats().unwrap().cache_hits, 1);
        // Even a continuation at shard distance rides the engine cache.
        let mut remote = CycleLedger::new();
        let opts = InvokeOpts::call().at_shard_distance(3);
        x.fused_hop_into(2, 0, &opts, &mut remote);
        assert_eq!(remote.get(Phase::ShardMiss), 0);
        // The client crosses into the fabric once, regardless of depth.
        assert_eq!(x.fused_crossings(6), 1);
    }

    #[test]
    fn tagged_tlb_and_partial_ctx_reduce_cost() {
        let full = call(&mut XpcIpc::custom("a", true, false), 0);
        let part = call(&mut XpcIpc::custom("b", false, false), 0);
        let tagged = call(&mut XpcIpc::custom("c", false, true), 0);
        assert!(part < full);
        assert!(tagged < part);
    }
}
