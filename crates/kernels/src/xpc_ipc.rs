//! The XPC-accelerated IPC model: kernel-bypass `xcall`/`xret` plus
//! relay-segment handover, usable as the `-XPC` variant of any ported
//! kernel (seL4-XPC, Zircon-XPC).
//!
//! One-way cost is the Figure 5 decomposition: caller trampoline +
//! `xcall` + post-switch TLB refills; the reply path pays `xret` + TLB.
//! Messages ride the relay segment regardless of size — zero copies, so
//! the cost is *flat* in message size, which is where the 5–37×
//! (same-core) and 81–141× (cross-core) bands of §5.2 come from.

use simos::cost::CostModel;
use simos::ipc::{IpcCost, IpcMechanism};

/// The XPC IPC model.
#[derive(Debug, Clone)]
pub struct XpcIpc {
    cost: CostModel,
    label: &'static str,
    /// Full (mutually distrusting) or partial caller context save.
    pub full_ctx: bool,
    /// Tagged TLB removes the post-switch refill penalty.
    pub tagged_tlb: bool,
}

impl XpcIpc {
    /// The seL4-XPC variant (paper default: full context, untagged TLB).
    pub fn sel4_xpc() -> Self {
        XpcIpc {
            cost: CostModel::u500(),
            label: "seL4-XPC",
            full_ctx: true,
            tagged_tlb: false,
        }
    }

    /// The Zircon-XPC variant (same engine path).
    pub fn zircon_xpc() -> Self {
        XpcIpc {
            label: "Zircon-XPC",
            ..Self::sel4_xpc()
        }
    }

    /// A custom-labelled configuration (ablation benches).
    pub fn custom(label: &'static str, full_ctx: bool, tagged_tlb: bool) -> Self {
        XpcIpc {
            cost: CostModel::u500(),
            label,
            full_ctx,
            tagged_tlb,
        }
    }

    /// Cross-core: the migrating-thread model runs the server's code on
    /// the client's core, so the cost is unchanged (§5.2 "Multi-core
    /// IPC") — provided for symmetry with the baselines.
    pub fn cross_core(self) -> Self {
        self
    }
}

impl IpcMechanism for XpcIpc {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn oneway(&self, _bytes: u64) -> IpcCost {
        IpcCost {
            cycles: self.cost.xpc_oneway(self.full_ctx, self.tagged_tlb),
            copied_bytes: 0,
        }
    }

    fn reply(&self, _bytes: u64) -> IpcCost {
        let tlb = if self.tagged_tlb {
            0
        } else {
            self.cost.tlb_refill
        };
        IpcCost {
            cycles: self.cost.xret + tlb,
            copied_bytes: 0,
        }
    }

    fn supports_handover(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sel4::{Sel4, Sel4Transfer};

    #[test]
    fn flat_in_message_size() {
        let x = XpcIpc::sel4_xpc();
        assert_eq!(x.oneway(0).cycles, x.oneway(32 << 20).cycles);
        assert_eq!(x.oneway(4096).copied_bytes, 0);
    }

    #[test]
    fn default_oneway_is_134() {
        // 76 trampoline + 18 xcall + 40 TLB (Figure 5, Full-Cxt +
        // non-blocking link stack).
        assert_eq!(XpcIpc::sel4_xpc().oneway(0).cycles, 134);
    }

    #[test]
    fn fig6_speedup_band_same_core() {
        let x = XpcIpc::sel4_xpc();
        let s = Sel4::new(Sel4Transfer::OneCopy);
        let speedup_0 = s.oneway(0).cycles as f64 / x.oneway(0).cycles as f64;
        let speedup_4k = s.oneway(4096).cycles as f64 / x.oneway(4096).cycles as f64;
        assert!((4.5..6.0).contains(&speedup_0), "{speedup_0}");
        assert!((30.0..40.0).contains(&speedup_4k), "{speedup_4k}");
    }

    #[test]
    fn fig6_speedup_band_cross_core() {
        let x = XpcIpc::sel4_xpc().cross_core();
        let s = Sel4::cross_core(Sel4Transfer::TwoCopy);
        let small = s.oneway(0).cycles as f64 / x.oneway(0).cycles as f64;
        let large = s.oneway(4096).cycles as f64 / x.oneway(4096).cycles as f64;
        assert!((70.0..95.0).contains(&small), "≈81x small: {small}");
        assert!((130.0..155.0).contains(&large), "≈141x at 4KB: {large}");
    }

    #[test]
    fn handover_advertised() {
        assert!(XpcIpc::sel4_xpc().supports_handover());
    }

    #[test]
    fn tagged_tlb_and_partial_ctx_reduce_cost() {
        let full = XpcIpc::custom("a", true, false).oneway(0).cycles;
        let part = XpcIpc::custom("b", false, false).oneway(0).cycles;
        let tagged = XpcIpc::custom("c", false, true).oneway(0).cycles;
        assert!(part < full);
        assert!(tagged < part);
    }
}
