//! The Zircon IPC model: channel-based message passing with kernel
//! twofold copy and an unoptimized scheduling path.
//!
//! §1/§5.2: Zircon's asynchronous channels simulate synchronous file
//! system semantics, costing "tens of thousands of cycles" per round trip;
//! Zircon-XPC sees ~60× at small message sizes, which calibrates the
//! one-way base to ~8000 cycles on the U500 model.

use simos::cost::CostModel;
use simos::ipc::{oneway_invocation, IpcSystem};
use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};
use std::collections::VecDeque;

/// The Zircon model.
#[derive(Debug, Clone)]
pub struct Zircon {
    cost: CostModel,
    cross_core: bool,
}

impl Zircon {
    /// Same-core Zircon.
    pub fn new() -> Self {
        Zircon {
            cost: CostModel::u500(),
            cross_core: false,
        }
    }

    /// Cross-core Zircon (adds IPI + remote wakeup).
    pub fn cross_core() -> Self {
        Zircon {
            cross_core: true,
            ..Self::new()
        }
    }
}

impl Default for Zircon {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcSystem for Zircon {
    fn name(&self) -> String {
        if self.cross_core {
            "Zircon+xcore".to_string()
        } else {
            "Zircon".to_string()
        }
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        // Channel write syscall + wait + scheduler + channel read syscall,
        // with the kernel copying the message twice (user→kernel→user).
        // The one-way base splits into two syscall entries/exits plus the
        // wait-queue/scheduler remainder.
        let kernel_entries = 2 * (c.trap + c.ipc_logic + c.restore);
        out.charge(Phase::Trap, 2 * c.trap);
        out.charge(Phase::IpcLogic, 2 * c.ipc_logic);
        out.charge(Phase::Restore, 2 * c.restore);
        out.charge(
            Phase::Schedule,
            c.zircon_oneway_base.saturating_sub(kernel_entries),
        );
        out.charge(Phase::Transfer, 2 * c.copy_cycles(bytes));
        if self.cross_core {
            out.charge(Phase::CrossCore, c.cross_core_base);
        }
        // Software-equivalent temporal mitigations in the kernel path.
        self.cost.charge_hardening(false, msg_len, opts, out);
        2 * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_tens_of_thousands() {
        // §1: "Zircon costs tens of thousands of cycles for one
        // round-trip IPC".
        let mut z = Zircon::new();
        let rt = z.roundtrip(64, 64).total;
        assert!((10_000..100_000).contains(&rt), "round trip: {rt}");
    }

    #[test]
    fn twofold_copy_counted() {
        let mut z = Zircon::new();
        assert_eq!(z.oneway(1000, &InvokeOpts::call()).copied_bytes, 2000);
    }

    #[test]
    fn slower_than_sel4() {
        // §5.2: Zircon "much slower than seL4".
        let z = Zircon::new().oneway(0, &InvokeOpts::call()).total;
        let s = crate::sel4::Sel4::new(crate::sel4::Sel4Transfer::OneCopy)
            .oneway(0, &InvokeOpts::call())
            .total;
        assert!(z > 5 * s);
    }

    #[test]
    fn ledger_preserves_the_calibrated_base() {
        let inv = Zircon::new().oneway(0, &InvokeOpts::call());
        assert_eq!(inv.total, CostModel::u500().zircon_oneway_base);
        assert_eq!(inv.total, inv.ledger.total());
        // The scheduler/wait-queue remainder dominates Zircon's cost.
        assert!(inv.ledger.get(Phase::Schedule) > inv.total / 2);
    }
}

/// Errors from [`Channel`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The peer endpoint was closed.
    PeerClosed,
    /// Nothing queued (`read` would block; Zircon returns SHOULD_WAIT).
    ShouldWait,
    /// Message exceeds the channel's maximum (Zircon: 64 KiB).
    TooBig,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::PeerClosed => write!(f, "peer closed"),
            ChannelError::ShouldWait => write!(f, "should wait"),
            ChannelError::TooBig => write!(f, "message too big"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Zircon's maximum channel message size.
pub const MAX_MSG_BYTES: usize = 64 * 1024;

/// One end-pair of a Zircon channel, with real queue semantics: the
/// structural substrate behind this model's costs. §1's observation —
/// Zircon "uses the asynchronous IPC to simulate the synchronous
/// semantics of the file system interfaces" — is [`Channel::call`]:
/// write + wait + read, two scheduler hops per round trip.
#[derive(Debug, Default)]
pub struct Channel {
    /// Messages travelling a -> b.
    to_b: VecDeque<Vec<u8>>,
    /// Messages travelling b -> a.
    to_a: VecDeque<Vec<u8>>,
    /// Whether endpoint B was closed.
    pub b_closed: bool,
}

impl Channel {
    /// A fresh channel pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Endpoint A writes; the kernel copies the message in (first of the
    /// twofold copies).
    ///
    /// # Errors
    ///
    /// [`ChannelError`] on closed peer or oversized message.
    pub fn write_a(&mut self, w: &mut simos::World, msg: &[u8]) -> Result<(), ChannelError> {
        if self.b_closed {
            return Err(ChannelError::PeerClosed);
        }
        if msg.len() > MAX_MSG_BYTES {
            return Err(ChannelError::TooBig);
        }
        // Syscall entry + handle check + copy into the kernel.
        w.compute(CostModel::u500().zircon_oneway_base / 2);
        w.data_pass(msg.len() as u64, 10);
        self.to_b.push_back(msg.to_vec());
        Ok(())
    }

    /// Endpoint B reads; the kernel copies the message out (second copy).
    ///
    /// # Errors
    ///
    /// [`ChannelError::ShouldWait`] when nothing is queued.
    pub fn read_b(&mut self, w: &mut simos::World) -> Result<Vec<u8>, ChannelError> {
        let msg = self.to_b.pop_front().ok_or(ChannelError::ShouldWait)?;
        w.compute(CostModel::u500().zircon_oneway_base / 2);
        w.data_pass(msg.len() as u64, 10);
        Ok(msg)
    }

    /// Endpoint B replies.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TooBig`] on oversized replies.
    pub fn write_b(&mut self, w: &mut simos::World, msg: &[u8]) -> Result<(), ChannelError> {
        if msg.len() > MAX_MSG_BYTES {
            return Err(ChannelError::TooBig);
        }
        w.compute(CostModel::u500().zircon_oneway_base / 2);
        w.data_pass(msg.len() as u64, 10);
        self.to_a.push_back(msg.to_vec());
        Ok(())
    }

    /// The synchronous-over-asynchronous emulation: A writes the request,
    /// the server (a closure standing in for the B-side process) consumes
    /// it and replies, A waits and reads — the "tens of thousands of
    /// cycles per round trip" pattern.
    ///
    /// # Errors
    ///
    /// Propagates channel errors from either side.
    pub fn call(
        &mut self,
        w: &mut simos::World,
        request: &[u8],
        server: impl FnOnce(&mut simos::World, Vec<u8>) -> Vec<u8>,
    ) -> Result<Vec<u8>, ChannelError> {
        self.write_a(w, request)?;
        // A blocks: scheduler switches to B.
        w.compute(CostModel::u500().schedule);
        let req = self.read_b(w)?;
        let reply = server(w, req);
        self.write_b(w, &reply)?;
        // B yields: scheduler switches back to A, which reads.
        w.compute(CostModel::u500().schedule);
        let msg = self.to_a.pop_front().ok_or(ChannelError::ShouldWait)?;
        w.data_pass(msg.len() as u64, 10);
        Ok(msg)
    }

    /// Close endpoint B (server died); queued a->b messages are dropped.
    pub fn close_b(&mut self) {
        self.b_closed = true;
        self.to_b.clear();
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::default()
        }
    }

    fn world() -> simos::World {
        simos::World::new(Box::new(Free))
    }

    #[test]
    fn messages_are_fifo() {
        let mut w = world();
        let mut ch = Channel::new();
        ch.write_a(&mut w, b"one").unwrap();
        ch.write_a(&mut w, b"two").unwrap();
        assert_eq!(ch.read_b(&mut w).unwrap(), b"one");
        assert_eq!(ch.read_b(&mut w).unwrap(), b"two");
        assert_eq!(ch.read_b(&mut w), Err(ChannelError::ShouldWait));
    }

    #[test]
    fn call_round_trips_and_costs_tens_of_thousands() {
        let mut w = world();
        let mut ch = Channel::new();
        let before = w.cycles;
        let reply = ch
            .call(&mut w, b"ping", |_, req| {
                assert_eq!(req, b"ping");
                b"pong".to_vec()
            })
            .unwrap();
        assert_eq!(reply, b"pong");
        let cost = w.cycles - before;
        assert!(
            (10_000..100_000).contains(&cost),
            "sync-over-async round trip: {cost} cycles"
        );
    }

    #[test]
    fn closed_peer_rejects_writes() {
        let mut w = world();
        let mut ch = Channel::new();
        ch.write_a(&mut w, b"lost").unwrap();
        ch.close_b();
        assert_eq!(ch.write_a(&mut w, b"x"), Err(ChannelError::PeerClosed));
        assert_eq!(ch.read_b(&mut w), Err(ChannelError::ShouldWait));
    }

    #[test]
    fn oversized_messages_rejected() {
        let mut w = world();
        let mut ch = Channel::new();
        let big = vec![0u8; MAX_MSG_BYTES + 1];
        assert_eq!(ch.write_a(&mut w, &big), Err(ChannelError::TooBig));
    }
}
