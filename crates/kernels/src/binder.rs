//! The Android Binder model (§4.3, §5.5): transaction buffers, ashmem,
//! and the XPC-accelerated variants, reproducing Figure 9's latency
//! curves.
//!
//! The §5.5 scenario is a surface compositor sending surface data to the
//! window manager. Latency includes (quoting the paper) "the data
//! preparation (client), the remote method invocation and data transfer
//! (framework), handling the surface content (server), and the reply".
//!
//! Component model (cycles), with constants fitted to Figure 9's
//! published endpoints and documented in `EXPERIMENTS.md`:
//!
//! * *prep/handle*: the client and server touch the surface once each at
//!   cache-line granularity;
//! * *Binder buffer path*: ioctl into the Binder driver, kernel twofold
//!   copy of the Parcel, framework dispatch;
//! * *Binder ashmem path*: fd passing + mmap + a defensive copy (ashmem
//!   "needs an extra copying to avoid TOCTTOU attacks", §4.3);
//! * *XPC paths*: `xcall`/`xret` + relay segment — no driver ioctl, no
//!   copies; Ashmem-XPC keeps the Binder ioctl control path but moves
//!   data by relay segment (Figure 9(b)'s third line).

use simos::cost::CostModel;
use simos::ipc::IpcSystem;
use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};

/// Which transport a Figure 9 measurement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinderSystem {
    /// Stock Binder, Parcel through the transaction buffer (Fig 9a) or
    /// ashmem (Fig 9b).
    Binder,
    /// Full XPC port: xcall/xret + relay segment (both figures).
    BinderXpc,
    /// Only ashmem replaced by relay segments; control path unchanged
    /// (Fig 9b "Ashmem-XPC").
    AshmemXpc,
}

impl BinderSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BinderSystem::Binder => "Binder",
            BinderSystem::BinderXpc => "Binder-XPC",
            BinderSystem::AshmemXpc => "Ashmem-XPC",
        }
    }
}

/// Fitted constants of the Binder latency model.
#[derive(Debug, Clone)]
pub struct BinderConfig {
    /// Driver ioctl + framework dispatch + reply, buffer path.
    pub driver_fixed: u64,
    /// fd passing + mmap + framework, ashmem path.
    pub ashmem_fixed: u64,
    /// XPC control path: xcall + xret + thin framework shim.
    pub xpc_fixed: u64,
    /// Ashmem-XPC keeps the Binder control path for setup.
    pub ashmem_xpc_fixed: u64,
    /// Client preparation + server handling, cycles per byte ×1000
    /// (cache-line touches for the buffer path).
    pub touch_millicycles_per_byte: u64,
    /// Surface "draw" pass per byte ×1000 (ashmem-scale payloads).
    pub draw_millicycles_per_byte: u64,
    /// Defensive ashmem copy per byte ×1000.
    pub ashmem_copy_millicycles_per_byte: u64,
}

impl Default for BinderConfig {
    fn default() -> Self {
        BinderConfig {
            driver_fixed: 30_000,
            ashmem_fixed: 45_000,
            xpc_fixed: 600,
            ashmem_xpc_fixed: 28_000,
            touch_millicycles_per_byte: 31, // ~2 cycles per 64B line
            draw_millicycles_per_byte: 240, // surface composition pass
            ashmem_copy_millicycles_per_byte: 450,
        }
    }
}

impl BinderConfig {
    fn per_byte(&self, millis: u64, bytes: u64) -> u64 {
        bytes * millis / 1000
    }

    /// The XPC control path split into phases: the `xcall`/`xret` pair
    /// plus the thin framework shim that replaces the driver ioctl.
    fn xpc_control_into(&self, cost: &CostModel, out: &mut CycleLedger) {
        out.charge(Phase::Xcall, cost.xcall);
        out.charge(Phase::Xret, cost.xret);
        out.charge(
            Phase::Driver,
            self.xpc_fixed.saturating_sub(cost.xcall + cost.xret),
        );
    }

    /// Phase ledger for the *buffer* path (Figure 9a).
    pub fn buffer_ledger(&self, system: BinderSystem, bytes: u64, cost: &CostModel) -> CycleLedger {
        let mut l = CycleLedger::new();
        self.buffer_into(system, bytes, cost, &mut l);
        l
    }

    /// Charge the *buffer* path into `out` (the sink twin of
    /// [`buffer_ledger`](Self::buffer_ledger), same phases and order).
    pub fn buffer_into(
        &self,
        system: BinderSystem,
        bytes: u64,
        cost: &CostModel,
        out: &mut CycleLedger,
    ) {
        let touches = 2 * self.per_byte(self.touch_millicycles_per_byte, bytes);
        match system {
            BinderSystem::Binder => {
                // ioctl + dispatch, twofold Parcel copy, surface touches.
                out.charge(Phase::Driver, self.driver_fixed);
                out.charge(Phase::Transfer, 2 * cost.copy_cycles(bytes));
                out.charge(Phase::Compute, touches);
            }
            BinderSystem::BinderXpc => {
                self.xpc_control_into(cost, out);
                out.charge(Phase::Compute, touches);
            }
            BinderSystem::AshmemXpc => {
                unimplemented!("Ashmem-XPC is an ashmem-path system (Figure 9b)")
            }
        }
    }

    /// Phase ledger for the *ashmem* path (Figure 9b).
    pub fn ashmem_ledger(&self, system: BinderSystem, bytes: u64, cost: &CostModel) -> CycleLedger {
        let mut l = CycleLedger::new();
        self.ashmem_into(system, bytes, cost, &mut l);
        l
    }

    /// Charge the *ashmem* path into `out` (the sink twin of
    /// [`ashmem_ledger`](Self::ashmem_ledger), same phases and order).
    pub fn ashmem_into(
        &self,
        system: BinderSystem,
        bytes: u64,
        cost: &CostModel,
        out: &mut CycleLedger,
    ) {
        let draw = self.per_byte(self.draw_millicycles_per_byte, bytes);
        match system {
            BinderSystem::Binder => {
                out.charge(Phase::Driver, self.ashmem_fixed);
                out.charge(
                    Phase::Transfer,
                    self.per_byte(self.ashmem_copy_millicycles_per_byte, bytes),
                );
                out.charge(Phase::Compute, draw);
            }
            BinderSystem::AshmemXpc => {
                out.charge(Phase::Driver, self.ashmem_xpc_fixed);
                out.charge(Phase::Compute, draw);
            }
            BinderSystem::BinderXpc => {
                self.xpc_control_into(cost, out);
                out.charge(Phase::Compute, draw);
            }
        }
    }

    /// Transaction latency in cycles for the *buffer* path (Figure 9a).
    pub fn buffer_cycles(&self, system: BinderSystem, bytes: u64, cost: &CostModel) -> u64 {
        self.buffer_ledger(system, bytes, cost).total()
    }

    /// Transaction latency in cycles for the *ashmem* path (Figure 9b).
    pub fn ashmem_cycles(&self, system: BinderSystem, bytes: u64, cost: &CostModel) -> u64 {
        self.ashmem_ledger(system, bytes, cost).total()
    }
}

/// The Binder stack as an [`IpcSystem`]: one surface transaction per
/// `oneway`, priced by the Figure 9 model.
#[derive(Debug, Clone)]
pub struct BinderIpc {
    system: BinderSystem,
    /// Use the ashmem path (Figure 9b) instead of the transaction buffer.
    pub ashmem: bool,
    cfg: BinderConfig,
    cost: CostModel,
}

impl BinderIpc {
    /// A Figure 9 system on the default fitted constants.
    pub fn new(system: BinderSystem, ashmem: bool) -> Self {
        assert!(
            ashmem || system != BinderSystem::AshmemXpc,
            "Ashmem-XPC only exists on the ashmem path"
        );
        BinderIpc {
            system,
            ashmem,
            cfg: BinderConfig::default(),
            cost: CostModel::u500(),
        }
    }
}

impl IpcSystem for BinderIpc {
    fn name(&self) -> String {
        if self.ashmem {
            format!("{}+ashmem", self.system.name())
        } else {
            self.system.name().to_string()
        }
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        simos::ipc::oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        if self.ashmem {
            self.cfg.ashmem_into(self.system, bytes, &self.cost, out);
        } else {
            self.cfg.buffer_into(self.system, bytes, &self.cost, out);
        }
        // XPC variants mitigate at engine rates; stock Binder pays the
        // software-equivalent lookups in its driver/kernel path.
        let hw = self.system != BinderSystem::Binder;
        self.cost.charge_hardening(hw, msg_len, opts, out);
        match (self.system, self.ashmem) {
            (BinderSystem::Binder, false) => 2 * bytes,
            (BinderSystem::Binder, true) => bytes,
            _ => 0, // relay segment: handover, no copies
        }
    }

    fn supports_handover(&self) -> bool {
        self.system != BinderSystem::Binder
    }

    /// Binder batching = one `BINDER_WRITE_READ` ioctl carrying many
    /// transactions: repeat transactions in the burst skip roughly half
    /// the control path (the ioctl entry and framework dispatch) but
    /// still pay per-transaction Parcel copies, surface work and the
    /// driver's per-transaction bookkeeping.
    fn amortizable_cycles(&self, phase: Phase, first_cycles: u64, _opts: &InvokeOpts) -> u64 {
        match phase {
            Phase::Driver => first_cycles / 2,
            _ => 0,
        }
    }
}

/// Figure 9 latency in microseconds.
pub fn binder_latency_us(system: BinderSystem, ashmem: bool, bytes: u64) -> f64 {
    let cfg = BinderConfig::default();
    let cost = CostModel::u500();
    let cycles = if ashmem {
        cfg.ashmem_cycles(system, bytes, &cost)
    } else {
        cfg.buffer_cycles(system, bytes, &cost)
    };
    cost.cycles_to_us(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_binder_magnitudes() {
        // Published: 378.4 us at 2 KB, 878.0 us at 16 KB.
        let l2k = binder_latency_us(BinderSystem::Binder, false, 2048);
        let l16k = binder_latency_us(BinderSystem::Binder, false, 16384);
        assert!((250.0..500.0).contains(&l2k), "2KB: {l2k}");
        assert!((500.0..1100.0).contains(&l16k), "16KB: {l16k}");
        assert!(l16k > l2k);
    }

    #[test]
    fn fig9a_xpc_speedup_band() {
        // Published improvements: 46.2x at 2 KB, 30.2x at 16 KB.
        let s2k = binder_latency_us(BinderSystem::Binder, false, 2048)
            / binder_latency_us(BinderSystem::BinderXpc, false, 2048);
        let s16k = binder_latency_us(BinderSystem::Binder, false, 16384)
            / binder_latency_us(BinderSystem::BinderXpc, false, 16384);
        assert!((25.0..60.0).contains(&s2k), "2KB speedup: {s2k}");
        assert!((20.0..50.0).contains(&s16k), "16KB speedup: {s16k}");
        assert!(s2k > s16k, "speedup shrinks as payload grows");
    }

    #[test]
    fn fig9b_ashmem_endpoints() {
        // Published: Binder 0.5 ms @ 4 KB to 233.2 ms @ 32 MB;
        // Ashmem-XPC 0.3 ms @ 4 KB to 82.0 ms @ 32 MB (2.8x).
        let b4k = binder_latency_us(BinderSystem::Binder, true, 4096) / 1000.0;
        let b32m = binder_latency_us(BinderSystem::Binder, true, 32 << 20) / 1000.0;
        assert!((0.3..0.8).contains(&b4k), "4KB: {b4k} ms");
        assert!((150.0..350.0).contains(&b32m), "32MB: {b32m} ms");
        let a32m = binder_latency_us(BinderSystem::AshmemXpc, true, 32 << 20) / 1000.0;
        let speedup = b32m / a32m;
        assert!(
            (2.0..4.0).contains(&speedup),
            "32MB ashmem speedup: {speedup}"
        );
    }

    #[test]
    fn fig9b_binder_xpc_dominates() {
        for bytes in [4096u64, 1 << 20, 32 << 20] {
            let b = binder_latency_us(BinderSystem::Binder, true, bytes);
            let ax = binder_latency_us(BinderSystem::AshmemXpc, true, bytes);
            let bx = binder_latency_us(BinderSystem::BinderXpc, true, bytes);
            assert!(bx <= ax, "full port at least as fast at {bytes}");
            assert!(ax < b, "ashmem-xpc beats stock at {bytes}");
        }
    }

    #[test]
    fn binder_ipc_matches_the_latency_model() {
        for (system, ashmem) in [
            (BinderSystem::Binder, false),
            (BinderSystem::BinderXpc, false),
            (BinderSystem::Binder, true),
            (BinderSystem::AshmemXpc, true),
            (BinderSystem::BinderXpc, true),
        ] {
            let mut sys = BinderIpc::new(system, ashmem);
            for bytes in [0usize, 2048, 16384, 1 << 20] {
                let inv = sys.oneway(bytes, &InvokeOpts::call());
                assert_eq!(inv.total, inv.ledger.total());
                let us = CostModel::u500().cycles_to_us(inv.total);
                let reference = binder_latency_us(system, ashmem, bytes as u64);
                assert!(
                    (us - reference).abs() < 1e-9,
                    "{}: {us} vs {reference}",
                    sys.name()
                );
            }
        }
    }

    #[test]
    fn xpc_variant_ledgers_show_the_instructions() {
        let inv = BinderIpc::new(BinderSystem::BinderXpc, false).oneway(2048, &InvokeOpts::call());
        assert_eq!(inv.ledger.get(Phase::Xcall), 18);
        assert_eq!(inv.ledger.get(Phase::Xret), 23);
        assert_eq!(inv.copied_bytes, 0);
        let stock = BinderIpc::new(BinderSystem::Binder, false).oneway(2048, &InvokeOpts::call());
        assert_eq!(stock.copied_bytes, 2 * 2048);
        assert!(stock.ledger.get(Phase::Driver) > inv.ledger.get(Phase::Driver));
    }

    #[test]
    fn fig9b_large_sizes_converge() {
        // §5.5: at 32 MB the improvement is only 2.8x — the draw pass
        // dominates, so Binder-XPC and Ashmem-XPC converge.
        let bx = binder_latency_us(BinderSystem::BinderXpc, true, 32 << 20);
        let ax = binder_latency_us(BinderSystem::AshmemXpc, true, 32 << 20);
        assert!((ax - bx).abs() / ax < 0.1, "within 10%: {bx} vs {ax}");
    }
}
