//! The historical IPC designs of Table 7, as executable mechanisms: the
//! Mach-3.0 baseline, LRPC's protected procedure call, L4's direct
//! process switch with temporary mapping, and Tornado-style PPC with
//! page remapping.
//!
//! These make Table 7's comparison *runnable*: every row can be swept
//! against message size and chain depth (the `table7` experiment and the
//! `transport_ablation` bench), instead of existing only as prose. Each
//! design charges the same [`Phase`] vocabulary as the modern kernels,
//! so its ledger lines up column-for-column with Table 1.

use simos::cost::CostModel;
use simos::ipc::{oneway_invocation, IpcSystem};
use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};
use simos::transport::Transport;

/// Mach-3.0: kernel-scheduled IPC with twofold copy (Table 7's baseline
/// row). Domain switch needs a trap *and* a scheduler pass.
#[derive(Debug, Clone)]
pub struct Mach {
    cost: CostModel,
}

impl Mach {
    /// A Mach-3.0 model on the U500 calibration.
    pub fn new() -> Self {
        Mach {
            cost: CostModel::u500(),
        }
    }
}

impl Default for Mach {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcSystem for Mach {
    fn name(&self) -> String {
        "Mach-3.0".into()
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        // Trap + port-rights checks (heavier than seL4's logic) +
        // full scheduler pass + restore, then kernel twofold copy.
        out.charge(Phase::Trap, c.trap);
        out.charge(Phase::IpcLogic, 2 * c.ipc_logic);
        out.charge(Phase::Schedule, c.schedule);
        out.charge(Phase::Switch, c.process_switch);
        out.charge(Phase::Restore, c.restore);
        self.cost.charge_hardening(false, msg_len, opts, out);
        Transport::TwofoldCopy.charge(out, &self.cost, bytes, 1)
    }
}

/// LRPC: protected procedure call — the caller's thread runs the callee's
/// code (no scheduling), arguments pass on a shared A-stack (one copy,
/// *not* TOCTTOU-safe). Still traps to the kernel for the domain switch.
#[derive(Debug, Clone)]
pub struct Lrpc {
    cost: CostModel,
}

impl Lrpc {
    /// An LRPC model on the U500 calibration.
    pub fn new() -> Self {
        Lrpc {
            cost: CostModel::u500(),
        }
    }
}

impl Default for Lrpc {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcSystem for Lrpc {
    fn name(&self) -> String {
        "LRPC".into()
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        // Trap + binding-object validation + direct switch (no scheduler,
        // no run-queue work) + A-stack copy by the caller.
        out.charge(Phase::Trap, c.trap);
        out.charge(Phase::IpcLogic, c.ipc_logic / 2);
        out.charge(Phase::Switch, c.process_switch);
        out.charge(Phase::Restore, c.restore);
        out.charge(Phase::Transfer, c.copy_cycles(bytes));
        self.cost.charge_hardening(false, msg_len, opts, out);
        bytes
    }
}

/// L4 (Liedtke '93): direct process switch plus *temporary mapping* — the
/// kernel maps the callee's buffer into a communication window in the
/// caller's space and copies once; the caller cannot reach the window, so
/// it is TOCTTOU-safe, but the kernel pays the map + copy + unmap.
#[derive(Debug, Clone)]
pub struct L4TempMap {
    cost: CostModel,
}

/// Kernel work to establish/tear down the temporary mapping window
/// (PTE writes + local TLB invalidate per 4 MiB window in the original;
/// charged per message here).
const TEMP_MAP_CYCLES: u64 = 260;

impl L4TempMap {
    /// An L4 temporary-mapping model on the U500 calibration.
    pub fn new() -> Self {
        L4TempMap {
            cost: CostModel::u500(),
        }
    }
}

impl Default for L4TempMap {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcSystem for L4TempMap {
    fn name(&self) -> String {
        "L4-tempmap".into()
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        let mapping = if bytes > 0 { TEMP_MAP_CYCLES } else { 0 };
        out.charge(Phase::Trap, c.trap);
        out.charge(Phase::IpcLogic, c.ipc_logic / 2);
        out.charge(Phase::Switch, c.process_switch);
        out.charge(Phase::Restore, c.restore);
        out.charge(Phase::Mapping, mapping);
        out.charge(Phase::Transfer, c.copy_cycles(bytes));
        self.cost.charge_hardening(false, msg_len, opts, out);
        bytes
    }
}

/// Tornado-style PPC with page remapping for messages: zero copies, but a
/// kernel trap and a remap + TLB shootdown per hop, page granularity.
#[derive(Debug, Clone)]
pub struct PpcRemap {
    cost: CostModel,
}

impl PpcRemap {
    /// A Tornado/PPC remapping model on the U500 calibration.
    pub fn new() -> Self {
        PpcRemap {
            cost: CostModel::u500(),
        }
    }
}

impl Default for PpcRemap {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcSystem for PpcRemap {
    fn name(&self) -> String {
        "Tornado-PPC".into()
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let bytes = msg_len as u64;
        let c = &self.cost;
        out.charge(Phase::Trap, c.trap);
        out.charge(Phase::IpcLogic, c.ipc_logic / 2);
        out.charge(Phase::Switch, c.process_switch);
        out.charge(Phase::Restore, c.restore);
        self.cost.charge_hardening(false, msg_len, opts, out);
        Transport::Remap.charge(out, &self.cost, bytes, 1)
    }
}

/// One executable row of Table 7.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// System name.
    pub name: String,
    /// Needs a kernel trap per call?
    pub traps: bool,
    /// Needs the scheduler per call?
    pub schedules: bool,
    /// TOCTTOU-safe message passing?
    pub tocttou_safe: bool,
    /// Handover along chains without recopying?
    pub handover: bool,
    /// Copies for an N-hop chain, as a formula string.
    pub copies: &'static str,
    /// Measured one-way cycles at 4 KiB.
    pub cycles_4k: u64,
}

/// Build the executable Table 7.
pub fn table7() -> Vec<Table7Row> {
    use crate::{Sel4, Sel4Transfer, XpcIpc};
    /// (system, traps, schedules, tocttou_safe, handover, copies).
    type RowSpec = (Box<dyn IpcSystem>, bool, bool, bool, bool, &'static str);
    let rows: Vec<RowSpec> = vec![
        (Box::new(Mach::new()), true, true, true, false, "2N"),
        (Box::new(Lrpc::new()), true, false, false, false, "N"),
        (Box::new(L4TempMap::new()), true, false, true, false, "N"),
        (
            Box::new(PpcRemap::new()),
            true,
            false,
            false,
            false,
            "0+TLB",
        ),
        (
            Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
            true,
            false,
            true,
            false,
            "2N",
        ),
        (Box::new(XpcIpc::sel4_xpc()), false, false, true, true, "0"),
    ];
    rows.into_iter()
        .map(
            |(mut m, traps, schedules, safe, handover, copies)| Table7Row {
                name: m.name(),
                traps,
                schedules,
                tocttou_safe: safe,
                handover,
                copies,
                cycles_4k: m.oneway(4096, &InvokeOpts::call()).total,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sel4, Sel4Transfer, XpcIpc};

    fn cycles(sys: &mut impl IpcSystem, bytes: usize) -> u64 {
        sys.oneway(bytes, &InvokeOpts::call()).total
    }

    #[test]
    fn mach_is_the_slowest_small_message_design() {
        let m = cycles(&mut Mach::new(), 0);
        for other in [
            cycles(&mut Lrpc::new(), 0),
            cycles(&mut L4TempMap::new(), 0),
            cycles(&mut Sel4::new(Sel4Transfer::OneCopy), 0),
        ] {
            assert!(m > other, "Mach {m} vs {other}");
        }
    }

    #[test]
    fn lrpc_beats_mach_but_keeps_a_copy() {
        let l = Lrpc::new().oneway(4096, &InvokeOpts::call());
        let m = Mach::new().oneway(4096, &InvokeOpts::call());
        assert!(l.total < m.total);
        assert_eq!(l.copied_bytes, 4096, "one A-stack copy");
    }

    #[test]
    fn l4_pays_mapping_over_lrpc_but_is_safe() {
        let l4inv = L4TempMap::new().oneway(4096, &InvokeOpts::call());
        let lrpc = cycles(&mut Lrpc::new(), 4096);
        assert!(l4inv.total > lrpc, "temporary mapping costs kernel work");
        assert_eq!(l4inv.ledger.get(Phase::Mapping), TEMP_MAP_CYCLES);
        // Safety is encoded in Table 7:
        let t7 = table7();
        let row = |n: &str| t7.iter().find(|r| r.name == n).unwrap().clone();
        assert!(row("L4-tempmap").tocttou_safe);
        assert!(!row("LRPC").tocttou_safe);
    }

    #[test]
    fn remap_is_flat_but_pays_per_hop() {
        let mut r = PpcRemap::new();
        assert_eq!(cycles(&mut r, 4096), cycles(&mut r, 1 << 20));
        let inv = r.oneway(4096, &InvokeOpts::call());
        assert!(inv.ledger.get(Phase::Mapping) > 0, "remap pays TLB work");
        assert_eq!(inv.copied_bytes, 0);
        assert!(inv.total > cycles(&mut XpcIpc::sel4_xpc(), 4096));
    }

    #[test]
    fn only_xpc_avoids_trap_and_supports_handover() {
        for row in table7() {
            let is_xpc = row.name == "seL4-XPC";
            assert_eq!(!row.traps, is_xpc, "{}", row.name);
            assert_eq!(row.handover, is_xpc, "{}", row.name);
        }
    }

    #[test]
    fn xpc_wins_the_4k_column() {
        let t7 = table7();
        let xpc = t7.iter().find(|r| r.name == "seL4-XPC").unwrap().cycles_4k;
        for row in &t7 {
            if row.name != "seL4-XPC" {
                assert!(row.cycles_4k > 5 * xpc, "{} {}", row.name, row.cycles_4k);
            }
        }
    }
}
