//! Kernel IPC models: seL4, Zircon, Android Binder, and their
//! XPC-accelerated variants, calibrated against the paper's measurements
//! (Table 1, §2.2, §5.2, §5.5).
//!
//! Each model implements [`simos::IpcMechanism`], so the service stack
//! (file system, network, database, web server) runs unmodified on any of
//! them — exactly how the paper ports one workload across six systems.

pub mod binder;
pub mod historical;
pub mod parcel;
pub mod sel4;
pub mod xpc_ipc;
pub mod zircon;

pub use binder::{binder_latency_us, BinderConfig, BinderSystem};
pub use historical::{table7, L4TempMap, Lrpc, Mach, PpcRemap, Table7Row};
pub use parcel::{surface_transaction, Parcel, ParcelError, Value};
pub use sel4::{Sel4, Sel4Transfer};
pub use xpc_ipc::XpcIpc;
pub use zircon::{Channel, ChannelError, Zircon};

/// Convenience: the six systems of the evaluation, boxed.
pub fn all_systems() -> Vec<Box<dyn simos::IpcMechanism>> {
    vec![
        Box::new(Zircon::new()),
        Box::new(XpcIpc::zircon_xpc()),
        Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
        Box::new(XpcIpc::sel4_xpc()),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_systems_have_distinct_names() {
        let names: Vec<String> = super::all_systems().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
