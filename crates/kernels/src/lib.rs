//! Kernel IPC models: seL4, Zircon, Android Binder, the historical
//! designs of Table 7, and their XPC-accelerated variants, calibrated
//! against the paper's measurements (Table 1, §2.2, §5.2, §5.5).
//!
//! Each model implements [`IpcSystem`] — the unified invocation pipeline
//! defined in `simos` — so the service stack (file system, network,
//! database, web server) runs unmodified on any of them, and every
//! invocation returns a phase-attributed [`Invocation`] ledger. That is
//! exactly how the paper ports one workload across six systems and then
//! reports per-phase breakdowns (Table 1, Figure 5).

#![forbid(unsafe_code)]

pub mod binder;
pub mod historical;
pub mod parcel;
pub mod sel4;
pub mod xpc_ipc;
pub mod zircon;

pub use binder::{binder_latency_us, BinderConfig, BinderIpc, BinderSystem};
pub use historical::{table7, L4TempMap, Lrpc, Mach, PpcRemap, Table7Row};
pub use parcel::{surface_transaction, Parcel, ParcelError, Value};
pub use sel4::{Sel4, Sel4Transfer};
pub use xpc_ipc::XpcIpc;
pub use zircon::{Channel, ChannelError, Zircon};

// The invocation pipeline itself, re-exported so downstream code can say
// `kernels::IpcSystem` without also depending on `simos`.
pub use simos::ipc::IpcSystem;
pub use simos::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};
pub use simos::multicore::{CrossCore, XCoreCost};

/// Convenience: the systems of the core evaluation (Figures 6–8), boxed.
pub fn all_systems() -> Vec<Box<dyn IpcSystem>> {
    vec![
        Box::new(Zircon::new()),
        Box::new(XpcIpc::zircon_xpc()),
        Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
        Box::new(XpcIpc::sel4_xpc()),
    ]
}

/// Factories for the full roster, one per system, in [`full_roster`]
/// order. For anything that needs *fresh* instances per core — e.g. a
/// [`simos::MultiWorld`] builds one system per core from a factory — a
/// boxed-roster walk cannot help, so this is the list to iterate.
pub fn full_roster_factories() -> Vec<fn() -> Box<dyn IpcSystem>> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
        || Box::new(Mach::new()),
        || Box::new(Lrpc::new()),
        || Box::new(L4TempMap::new()),
        || Box::new(PpcRemap::new()),
        || Box::new(BinderIpc::new(BinderSystem::Binder, false)),
        || Box::new(BinderIpc::new(BinderSystem::BinderXpc, false)),
        || Box::new(BinderIpc::new(BinderSystem::AshmemXpc, true)),
    ]
}

/// The full roster: the core evaluation systems plus the historical
/// designs of Table 7 and the Binder stack of Figure 9 — every model in
/// the repository, behind the one `IpcSystem` pipeline (the `figures
/// --json` dump walks this list).
pub fn full_roster() -> Vec<Box<dyn IpcSystem>> {
    full_roster_factories().into_iter().map(|mk| mk()).collect()
}

/// The full roster priced as *cross-core* calls: every system wrapped in
/// the §5.2 [`CrossCore`] adapter (IPI + remote wakeup + cache-line
/// transfer; zero for thread-migrating designs). This is what makes the
/// 81–141× / ~60× ratio bands testable over all 12 systems instead of
/// two hand-rolled variants.
pub fn full_roster_cross_core() -> Vec<Box<dyn IpcSystem>> {
    full_roster()
        .into_iter()
        .map(|s| Box::new(CrossCore::new(s)) as Box<dyn IpcSystem>)
        .collect()
}

#[cfg(test)]
mod tests {
    use simos::ledger::InvokeOpts;

    #[test]
    fn all_systems_have_distinct_names() {
        let names: Vec<String> = super::full_roster().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn every_system_upholds_the_ledger_invariant() {
        for mut sys in super::full_roster() {
            for bytes in [0usize, 64, 4096] {
                let inv = sys.oneway(bytes, &InvokeOpts::call());
                assert_eq!(inv.total, inv.ledger.total(), "{}", sys.name());
            }
        }
    }
}
