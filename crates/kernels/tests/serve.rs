//! Open-loop serving properties, roster-wide (plain `#[test]` grids —
//! the offline build policy keeps `proptest` out):
//!
//! * **Replay determinism**: the same seed produces the same
//!   [`ArrivalTrace`] and the same trace produces a byte-identical
//!   [`ServeReport`] for every system in the roster, whether scratch is
//!   fresh or reused and whether attribution is full or sampled
//!   (totals).
//! * **Low-load equivalence**: at offered load far below capacity the
//!   open loop and the closed loop agree on median latency — the two
//!   generators price requests through the same machinery and differ
//!   only in the issue rule, which queueing makes visible only near
//!   saturation.
//! * **Exact conservation**: under overload with tight tenant queue
//!   caps, `admitted + shed == offered` holds exactly, globally and
//!   per tenant, for every system.
//! * **Monotone knee**: holding the seed fixed and shrinking the mean
//!   interarrival scales every gap of the same unit-exponential
//!   sequence, so p99 is monotone non-decreasing in offered load.

use kernels::full_roster_factories;
use simos::{
    ArrivalProcess, Attribution, LedgerArena, LoadGen, MultiWorld, OpenLoopGen, Placement,
    ServePolicy, ServeReport, ServeScratch, ServeSpec, Step, SweepScratch, TenantClass,
};

fn recipe() -> Vec<Step> {
    vec![
        Step::Oneway {
            from: 0,
            to: 1,
            bytes: 256,
        },
        Step::Compute { at: 1, cycles: 800 },
        Step::Roundtrip {
            from: 1,
            to: 2,
            request: 64,
            response: 4096,
        },
    ]
}

fn mw(mk: fn() -> Box<dyn simos::IpcSystem>) -> MultiWorld {
    MultiWorld::builder().cores(3).build(mk)
}

fn gen(mean: u64) -> OpenLoopGen {
    OpenLoopGen {
        process: ArrivalProcess::Poisson,
        mean_interarrival_cycles: mean,
        tenants: 2,
        users: 3_000_000,
        seed: 0x7a5e_11ed,
    }
}

fn spec(queue_cap: usize) -> ServeSpec {
    ServeSpec {
        tenants: 2,
        classes: vec![TenantClass {
            queue_cap,
            slo_p99_us: f64::INFINITY,
        }],
        backlog_cap_cycles: 0,
    }
}

fn serve_full(
    mk: fn() -> Box<dyn simos::IpcSystem>,
    mean: u64,
    n: u64,
    queue_cap: usize,
) -> ServeReport {
    let trace = gen(mean).trace(n, 1).expect("valid trace spec");
    let mut world = mw(mk);
    simos::serve::serve(
        &mut world,
        &ServePolicy::Static(Placement::RoundRobin),
        3,
        &[recipe()],
        &trace,
        &spec(queue_cap),
    )
    .expect("serve")
}

#[test]
fn same_seed_same_trace_byte_identical_roster_wide() {
    let mut scratch = ServeScratch::new();
    let mut arena = LedgerArena::new();
    for mk in full_roster_factories() {
        let trace_a = gen(3_000).trace(600, 1).unwrap();
        let trace_b = gen(3_000).trace(600, 1).unwrap();
        assert_eq!(trace_a, trace_b, "generator must replay from its seed");
        assert_eq!(trace_a.diff(&trace_b), None);
        // Fresh scratch vs reused scratch, same trace: identical report.
        let fresh = serve_full(mk, 3_000, 600, 1 << 16);
        let mut world = mw(mk);
        let reused = simos::serve::serve_with(
            &mut world,
            &ServePolicy::Static(Placement::RoundRobin),
            3,
            &[recipe()],
            &trace_a,
            &spec(1 << 16),
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .expect("serve");
        assert_eq!(
            fresh, reused,
            "{}: serve must be deterministic",
            fresh.system
        );
    }
}

#[test]
fn low_load_serve_p50_matches_closed_loop_p50_roster_wide() {
    // Closed loop, window 1, one client: every request runs unloaded.
    let closed_spec = LoadGen {
        clients: 1,
        requests: 200,
        seed: 0x7a5e_11ed,
        think_cycles: 0,
    };
    let mut scratch = SweepScratch::new();
    let mut arena = LedgerArena::new();
    for mk in full_roster_factories() {
        let closed = simos::load::run_windowed_with(
            &mut mw(mk),
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &closed_spec,
            1,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .expect("closed-loop run");
        // Open loop at ~1% of capacity: queueing is negligible, so the
        // only difference from the closed loop is the issue rule.
        let served = serve_full(mk, 2_000_000, 200, 1 << 16);
        assert_eq!(served.shed(), 0);
        let ratio = served.p50_us / closed.p50_us;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "{}: open-loop p50 {} vs closed-loop p50 {} (ratio {ratio})",
            served.system,
            served.p50_us,
            closed.p50_us
        );
    }
}

#[test]
fn overload_conserves_arrivals_exactly_roster_wide() {
    for mk in full_roster_factories() {
        // Offered far past capacity with a tight cap: shedding must
        // occur and every arrival must be accounted exactly once.
        let r = serve_full(mk, 50, 3_000, 8);
        assert_eq!(r.offered, 3_000);
        assert!(r.shed() > 0, "{}: overload must shed", r.system);
        assert_eq!(
            r.admitted + r.shed(),
            r.offered,
            "{}: conservation",
            r.system
        );
        let mut per_tenant_offered = 0;
        for t in &r.tenants {
            assert_eq!(
                t.admitted + t.shed(),
                t.offered,
                "{} tenant {}",
                r.system,
                t.tenant
            );
            per_tenant_offered += t.offered;
        }
        assert_eq!(per_tenant_offered, r.offered, "{}", r.system);
        assert!(r.shed_rate() > 0.0 && r.shed_rate() < 1.0);
    }
}

#[test]
fn p99_is_monotone_non_decreasing_in_offered_load() {
    // Same seed at every load: smaller mean interarrival shrinks every
    // gap of the same unit-exponential draw, so waits can only grow.
    for mk in full_roster_factories().into_iter().take(4) {
        let mut last = 0.0f64;
        let mut sys = String::new();
        for mean in [40_000u64, 10_000, 4_000, 2_000, 1_000] {
            let r = serve_full(mk, mean, 1_500, 1 << 16);
            assert!(
                r.p99_us >= last,
                "{}: p99 fell to {} at mean interarrival {mean} (was {last})",
                r.system,
                r.p99_us
            );
            last = r.p99_us;
            sys = r.system;
        }
        assert!(last > 0.0, "{sys}: tail must be positive");
    }
}
