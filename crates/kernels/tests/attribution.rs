//! Sampling-soundness properties of the [`Attribution`] hot path, looped
//! over plain `#[test]` grids (the offline build policy keeps `proptest`
//! out; these sweeps cover the same ground deterministically):
//!
//! * **Full mode is the old path**: `run_windowed_with(...,
//!   Attribution::Full)` reproduces `run_windowed` bit for bit across
//!   the 12-system roster — report, spans, percentiles, everything.
//! * **Sampled totals are exact**: `Attribution::Sampled` accumulates
//!   every request into flat [`PhaseTotals`]; per phase those totals
//!   equal the full-attribution report ledger's, for every system ×
//!   batch {1,8,64} × window {1,4,16} × `every` {1,3,64}. Sampling
//!   drops span *order* and zero-cycle span presence — never cycles.
//! * **Kept ledgers sum back**: with `every = 1` each request's span
//!   ledger is retained in the arena, and the per-phase sum over those
//!   ledgers reproduces the totals exactly.

use kernels::full_roster_factories;
use simos::{
    Attribution, LedgerArena, LoadGen, MultiWorld, Phase, PhaseTotals, Placement, Step,
    SweepScratch,
};

const BATCHES: [u64; 3] = [1, 8, 64];
const WINDOWS: [usize; 3] = [1, 4, 16];
const EVERY: [u64; 3] = [1, 3, 64];

/// Small-but-contended spec: enough requests that windows open, queueing
/// appears, and every sampling stride keeps more than one ledger.
fn spec() -> LoadGen {
    LoadGen {
        clients: 4,
        requests: 80,
        seed: 0x7a5e_11ed,
        think_cycles: 120,
    }
}

/// The pipeline-shaped request: a burst in, per-call handling, a burst
/// back — exercises oneway/batch/compute pricing and (for `window > 1`)
/// queue attribution.
fn recipe(batch: u64) -> Vec<Step> {
    vec![
        Step::Batch {
            from: 0,
            to: 1,
            calls: batch,
            bytes_each: 64,
        },
        Step::Compute {
            at: 1,
            cycles: 150 * batch,
        },
        Step::Roundtrip {
            from: 1,
            to: 2,
            request: 16,
            response: 1024,
        },
    ]
}

fn mw(mk: fn() -> Box<dyn simos::IpcSystem>) -> MultiWorld {
    MultiWorld::builder().cores(3).build(mk)
}

#[test]
fn sampled_totals_equal_full_attribution_roster_wide() {
    let spec = spec();
    let mut scratch = SweepScratch::new();
    let mut arena = LedgerArena::new();
    for mk in full_roster_factories() {
        for batch in BATCHES {
            let recipes = [recipe(batch)];
            for window in WINDOWS {
                let full = simos::load::run_windowed_with(
                    &mut mw(mk),
                    &Placement::RoundRobin,
                    3,
                    &recipes,
                    &spec,
                    window,
                    &mut scratch,
                    Attribution::Full(&mut arena),
                )
                .expect("full run must be runnable");
                // Full mode through an explicit sink IS run_windowed.
                let plain = simos::load::run_windowed(
                    &mut mw(mk),
                    &Placement::RoundRobin,
                    3,
                    &recipes,
                    &spec,
                    window,
                );
                assert_eq!(full, plain, "{} b={batch} w={window}", full.system);
                for every in EVERY {
                    let mut totals = PhaseTotals::new();
                    let mut kept = LedgerArena::new();
                    let sampled = simos::load::run_windowed_with(
                        &mut mw(mk),
                        &Placement::RoundRobin,
                        3,
                        &recipes,
                        &spec,
                        window,
                        &mut scratch,
                        Attribution::Sampled {
                            every,
                            totals: &mut totals,
                            arena: &mut kept,
                        },
                    )
                    .expect("sampled run must be runnable");
                    let tag = format!("{} b={batch} w={window} 1/{every}", full.system);
                    // The soundness core: flat sums commute with span
                    // merging, so sampled totals match full attribution
                    // phase for phase, cycle for cycle.
                    for p in Phase::ALL {
                        assert_eq!(totals.get(p), full.ledger.get(p), "{tag}: {p:?}");
                    }
                    assert_eq!(totals.total(), full.ledger.total(), "{tag}");
                    // Everything except the report ledger's span layout
                    // is identical across modes.
                    assert_eq!(sampled.ledger, totals.to_ledger(), "{tag}");
                    assert_eq!(sampled.makespan_cycles, full.makespan_cycles, "{tag}");
                    assert_eq!(sampled.busy_cycles, full.busy_cycles, "{tag}");
                    assert_eq!(sampled.ipc_calls, full.ipc_calls, "{tag}");
                    assert_eq!(
                        (sampled.p50_us, sampled.p95_us, sampled.p99_us),
                        (full.p50_us, full.p95_us, full.p99_us),
                        "{tag}"
                    );
                    assert_eq!(sampled.throughput_rps, full.throughput_rps, "{tag}");
                    assert_eq!(sampled.engine_cache, full.engine_cache, "{tag}");
                    // 1-in-`every` requests kept their span ledger.
                    assert_eq!(
                        kept.len() as u64,
                        spec.requests.div_ceil(every),
                        "{tag}: kept-ledger count"
                    );
                }
            }
        }
    }
}

#[test]
fn kept_ledgers_sum_back_to_the_totals() {
    // `every = 1` keeps every request's span ledger: summing them must
    // reproduce the flat totals exactly — the retained sample is a
    // faithful decomposition, not an approximation.
    let spec = spec();
    let mut scratch = SweepScratch::new();
    for mk in full_roster_factories() {
        let recipes = [recipe(8)];
        let mut totals = PhaseTotals::new();
        let mut kept = LedgerArena::new();
        simos::load::run_windowed_with(
            &mut mw(mk),
            &Placement::RoundRobin,
            3,
            &recipes,
            &spec,
            4,
            &mut scratch,
            Attribution::Sampled {
                every: 1,
                totals: &mut totals,
                arena: &mut kept,
            },
        )
        .expect("sampled run must be runnable");
        let name = mk().name();
        assert_eq!(kept.len() as u64, spec.requests, "{name}");
        let mut summed = PhaseTotals::new();
        for h in kept.handles() {
            for (p, c) in kept.spans(h) {
                summed.charge(p, c);
            }
        }
        assert_eq!(summed, totals, "{name}: kept ledgers must sum back");
    }
}
