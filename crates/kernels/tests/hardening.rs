//! Temporal-mitigation pricing invariants over the full 12-system
//! roster: all-off is byte-identical to the unhardened model, every
//! mitigation costs something on the leg it guards, and XPC-engine
//! systems pay the hardware rate while trap baselines pay their
//! software equivalent.

use kernels::full_roster_factories;
use simos::{CostModel, Hardening, InvokeOpts, IpcSystem, Phase};

fn tax(sys: &mut dyn IpcSystem, len: usize, h: Hardening) -> u64 {
    let base = sys.oneway(len, &InvokeOpts::call()).total;
    let hard = sys.oneway(len, &InvokeOpts::call().hardened(h)).total;
    hard - base
}

#[test]
fn all_off_is_byte_identical_to_the_unhardened_model() {
    for factory in full_roster_factories() {
        let mut sys = factory();
        for len in [0usize, 64, 4096, 16384] {
            for opts in [InvokeOpts::call(), InvokeOpts::reply_leg()] {
                let plain = sys.oneway(len, &opts).clone();
                let off = sys.oneway(len, &opts.clone().hardened(Hardening::NONE));
                assert_eq!(plain, off, "{}: NONE must change nothing", sys.name());
            }
        }
    }
}

#[test]
fn every_mitigation_prices_its_leg() {
    let epochs = Hardening {
        revocation_epochs: true,
        ..Hardening::NONE
    };
    let scrub = Hardening {
        zero_on_handover: true,
        ..Hardening::NONE
    };
    let flow = Hardening {
        flow_tags: true,
        ..Hardening::NONE
    };
    for factory in full_roster_factories() {
        let mut sys = factory();
        let name = sys.name();
        assert!(
            tax(sys.as_mut(), 0, epochs) > 0,
            "{name}: epoch check must cost on the call leg"
        );
        assert!(
            tax(sys.as_mut(), 0, flow) > 0,
            "{name}: flow tag must cost on the call leg"
        );
        assert_eq!(
            tax(sys.as_mut(), 0, scrub),
            0,
            "{name}: nothing to scrub at 0 B"
        );
        let c = CostModel::u500();
        assert_eq!(
            tax(sys.as_mut(), 4096, scrub),
            c.scrub_cycles(4096),
            "{name}: scrub is the same per-byte store pass for everyone"
        );
        // The scrub lands in its own phase so the tax curve can see it.
        let inv = sys.oneway(4096, &InvokeOpts::call().hardened(scrub));
        assert_eq!(inv.ledger.get(Phase::Scrub), c.scrub_cycles(4096));
    }
}

#[test]
fn engine_systems_pay_hardware_rates_and_baselines_software() {
    let c = CostModel::u500();
    let epochs = Hardening {
        revocation_epochs: true,
        ..Hardening::NONE
    };
    for factory in full_roster_factories() {
        let mut sys = factory();
        let name = sys.name();
        let got = tax(sys.as_mut(), 0, epochs);
        if name.contains("XPC") {
            assert_eq!(got, c.epoch_check, "{name}: engine-rate epoch check");
        } else {
            assert_eq!(got, c.epoch_check_sw, "{name}: software-rate epoch check");
        }
    }
}

#[test]
fn reply_legs_reverify_flow_tags_but_not_epochs() {
    let c = CostModel::u500();
    for factory in full_roster_factories() {
        let mut sys = factory();
        let name = sys.name();
        let base = sys.oneway(0, &InvokeOpts::reply_leg()).total;
        let epochs = sys
            .oneway(
                0,
                &InvokeOpts::reply_leg().hardened(Hardening {
                    revocation_epochs: true,
                    ..Hardening::NONE
                }),
            )
            .total;
        assert_eq!(epochs, base, "{name}: the cap was checked on the call leg");
        let flow = sys
            .oneway(
                0,
                &InvokeOpts::reply_leg().hardened(Hardening {
                    flow_tags: true,
                    ..Hardening::NONE
                }),
            )
            .total;
        let want = if name.contains("XPC") {
            c.flow_tag
        } else {
            c.flow_tag_sw
        };
        assert_eq!(flow - base, want, "{name}: the return pops a tagged record");
    }
}
