//! Depth-1 parity: a one-hop fused [`CallProgram`] with no compute and
//! no handover must price **byte-identically** — same phase ledger,
//! same completion time, same copied bytes — to the equivalent
//! [`Step::Roundtrip`], for every mechanism in the full 12-system
//! roster. The fused path is a generalization, not a re-model: at
//! depth 1 the AnyCall submit-once shape degenerates to exactly one
//! call leg plus one reply leg.

use kernels::full_roster_factories;
use simos::{MultiWorld, Recipe, Step};

const REQUEST: u64 = 4096;
const RESPONSE: u64 = 512;

#[test]
fn depth_one_program_prices_identically_to_roundtrip_across_the_roster() {
    for mk in full_roster_factories() {
        let name = mk().name();
        let program = Recipe::new(0)
            .hop(1, REQUEST)
            .reply(RESPONSE)
            .build()
            .expect("one hop is a valid program");

        let mut fused_world = MultiWorld::builder().cores(2).build(mk);
        let pid = fused_world.register_program(program);
        let fused = fused_world.exec(0, Step::Fused(pid), 0);

        let mut rt_world = MultiWorld::builder().cores(2).build(mk);
        let rt = rt_world.exec(
            0,
            Step::Roundtrip {
                from: 0,
                to: 1,
                request: REQUEST,
                response: RESPONSE,
            },
            0,
        );

        assert_eq!(
            fused.inv.ledger, rt.inv.ledger,
            "{name}: fused depth-1 ledger diverges from the roundtrip"
        );
        assert_eq!(fused.inv.total, rt.inv.total, "{name}: total");
        assert_eq!(
            fused.inv.copied_bytes, rt.inv.copied_bytes,
            "{name}: copied bytes"
        );
        assert_eq!(fused.done, rt.done, "{name}: completion time");
    }
}
