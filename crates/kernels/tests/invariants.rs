//! Property-style invariants, exhaustively looped over plain `#[test]`
//! grids (the former `proptest` suites are gated off by the offline
//! build policy — these cover the same ground deterministically).

use kernels::{
    full_roster, full_roster_cross_core, CrossCore, InvokeOpts, Phase, Sel4, Sel4Transfer,
    XCoreCost, XpcIpc, Zircon,
};
use simos::cost::CostModel;
use simos::ipc::IpcSystem;
use simos::transport::Transport;

/// Size axis: boundary values of every transfer regime (register path,
/// slow path at 64 B, buffer edge at 120/121, pages, megabytes).
const SIZES: [usize; 10] = [0, 1, 32, 64, 120, 121, 1024, 4096, 65536, 1 << 20];

#[test]
fn ledger_sums_equal_invocation_totals_everywhere() {
    // The Invocation invariant, across the full 12-system roster, every
    // size regime, and both legs of a call.
    for opts in [InvokeOpts::call(), InvokeOpts::reply_leg()] {
        for mut sys in full_roster() {
            for bytes in SIZES {
                let inv = sys.oneway(bytes, &opts);
                assert_eq!(
                    inv.total,
                    inv.ledger.total(),
                    "{} at {bytes}B (reply={})",
                    sys.name(),
                    opts.reply
                );
            }
        }
    }
}

#[test]
fn phases_are_charged_at_most_in_first_charge_order() {
    // A ledger never lists the same phase twice: repeated charges fold
    // into the first span, so span order is a stable presentation key.
    for mut sys in full_roster() {
        let inv = sys.oneway(4096, &InvokeOpts::call());
        let mut seen: Vec<Phase> = Vec::new();
        for &(p, _) in inv.ledger.spans() {
            assert!(!seen.contains(&p), "{}: {p:?} listed twice", sys.name());
            seen.push(p);
        }
    }
}

#[test]
fn relay_seg_never_exceeds_twofold_copy() {
    // §4.1: handover via the relay segment must never cost more than the
    // copying baseline — at any size, over any hop count.
    let cost = CostModel::u500();
    for bytes in SIZES {
        for hops in 1..=8u64 {
            let relay = Transport::RelaySeg.transfer_cycles(&cost, bytes as u64, hops);
            let copy = Transport::TwofoldCopy.transfer_cycles(&cost, bytes as u64, hops);
            assert!(
                relay <= copy,
                "relay-seg {relay} > twofold-copy {copy} at {bytes}B x {hops} hops"
            );
            assert_eq!(
                Transport::RelaySeg.copies(hops),
                0,
                "relay-seg moves no bytes"
            );
        }
    }
}

#[test]
fn u500_calibration_bands_hold() {
    // The calibration constants behind every figure, pinned to the
    // paper's measurements (Table 1, Table 3, Figure 5, §5.2).
    let c = CostModel::u500();
    assert_eq!(c.sel4_fastpath_base(), 664, "Table 1 sum (0B)");
    assert_eq!(c.sel4_fastpath_ledger().total(), 664);
    assert_eq!(c.copy_cycles(4096), 4010, "Table 1: 4K transfer");
    assert_eq!((c.xcall, c.xret, c.swapseg), (18, 23, 11), "Table 3");
    assert_eq!(c.xpc_oneway(true, false), 76 + 18 + 40, "Figure 5 Full-Cxt");
    assert_eq!(c.xpc_oneway(false, true), 15 + 18, "Figure 5 best one-way");
    // §5.2 speedup bands at the model's own numbers: same-core 0B and
    // 4KB speedups of seL4 over XPC.
    let xpc = c.xpc_oneway(true, false) as f64;
    let s0 = 664.0 / xpc;
    let s4k = (664.0 + 4010.0) / xpc;
    assert!((4.5..6.5).contains(&s0), "0B speedup {s0:.1} (paper: 5x)");
    assert!(
        (30.0..40.0).contains(&s4k),
        "4KB speedup {s4k:.1} (paper: 37x)"
    );
}

#[test]
fn cross_core_adapter_grid_over_the_full_roster() {
    // Every roster system, wrapped by the §5.2 CrossCore adapter, over
    // every size regime: the wrapped call costs exactly the inner call
    // plus the surcharge (zero for thread-migrating designs), the ledger
    // invariant holds, and the CrossCore span is always present.
    let xc = XCoreCost::u500();
    // One diff buffer for the whole grid: `diff_into` re-fills it per
    // cell, so the 12 x 10 sweep allocates it once.
    let mut delta: Vec<(Phase, i64)> = Vec::new();
    for (mut plain, mut cross) in full_roster().into_iter().zip(full_roster_cross_core()) {
        assert_eq!(cross.name(), format!("{}+xcore", plain.name()));
        assert_eq!(cross.supports_handover(), plain.supports_handover());
        for bytes in SIZES {
            let inner = plain.oneway(bytes, &InvokeOpts::call());
            let wrapped = cross.oneway(bytes, &InvokeOpts::call());
            let extra = if plain.migrating_threads() {
                0
            } else {
                xc.hop_extra(bytes as u64)
            };
            assert_eq!(
                wrapped.total,
                inner.total + extra,
                "{} at {bytes}B",
                cross.name()
            );
            assert_eq!(wrapped.ledger.total(), wrapped.total, "{}", cross.name());
            assert_eq!(wrapped.ledger.get(Phase::CrossCore), extra);
            assert!(
                wrapped
                    .ledger
                    .spans()
                    .iter()
                    .any(|(p, _)| *p == Phase::CrossCore),
                "{}: CrossCore span must be recorded even at zero cost",
                cross.name()
            );
            assert_eq!(wrapped.copied_bytes, inner.copied_bytes);
            // The ledger diff decomposes the surcharge exactly: the
            // wrapped-vs-inner delta is CrossCore and nothing else.
            wrapped.ledger.diff_into(&inner.ledger, &mut delta);
            let sum: i64 = delta.iter().map(|&(_, d)| d).sum();
            assert_eq!(sum, extra as i64, "{} at {bytes}B", cross.name());
            for &(p, d) in &delta {
                if p != Phase::CrossCore {
                    assert_eq!(d, 0, "{}: {p:?} must not drift", cross.name());
                }
            }
        }
    }
}

#[test]
fn section_5_2_cross_core_ratio_bands() {
    // §5.2: cross-core seL4 is 81–141× an XPC call; Zircon is ~60× —
    // priced through the generic adapter, not hand-rolled variants.
    let xpc0 = XpcIpc::sel4_xpc().oneway(0, &InvokeOpts::call()).total as f64;
    let mut sel4_xc = CrossCore::new(Box::new(Sel4::new(Sel4Transfer::OneCopy)));
    for bytes in [0usize, 4096] {
        let ratio = sel4_xc.oneway(bytes, &InvokeOpts::call()).total as f64 / xpc0;
        assert!(
            (81.0..=141.0).contains(&ratio),
            "seL4 cross-core at {bytes}B: {ratio:.1}x (paper: 81-141x)"
        );
    }
    let zircon = Zircon::new().oneway(0, &InvokeOpts::call()).total as f64;
    let z_ratio = zircon / xpc0;
    assert!(
        (55.0..=65.0).contains(&z_ratio),
        "Zircon: {z_ratio:.1}x (~60x)"
    );
    // XPC itself crosses cores for free: the adapter must not change it.
    let mut xpc_xc = CrossCore::new(Box::new(XpcIpc::sel4_xpc()));
    assert_eq!(xpc_xc.oneway(4096, &InvokeOpts::call()).total as f64, xpc0);
}

#[test]
fn adapter_reproduces_the_hand_rolled_variants() {
    // The generic adapter and the legacy `Sel4::cross_core` /
    // `Zircon::cross_core` constructors must agree where both exist
    // (0 B: the hand-rolled variants charge only the constant part).
    let mut a = CrossCore::new(Box::new(Sel4::new(Sel4Transfer::TwoCopy)));
    let mut b = Sel4::cross_core(Sel4Transfer::TwoCopy);
    let ia = a.oneway(0, &InvokeOpts::call());
    let ib = b.oneway(0, &InvokeOpts::call());
    assert_eq!(ia.total, ib.total);
    assert_eq!(
        ia.ledger.get(Phase::CrossCore),
        ib.ledger.get(Phase::CrossCore)
    );

    let mut a = CrossCore::new(Box::new(Zircon::new()));
    let mut b = Zircon::cross_core();
    assert_eq!(
        a.oneway(0, &InvokeOpts::call()).total,
        b.oneway(0, &InvokeOpts::call()).total
    );
}

#[test]
fn batching_amortizes_monotonically_over_the_full_roster() {
    // Per-call cycles strictly decrease with batch size for every
    // mechanism (same-core and cross-core), floor at the per-call
    // transfer cost, and uphold the ledger + copied-bytes invariants.
    const BATCHES: [u64; 3] = [1, 8, 64];
    for mut sys in full_roster().into_iter().chain(full_roster_cross_core()) {
        let name = sys.name();
        for bytes in [0usize, 64, 4096] {
            let first = sys.oneway(bytes, &InvokeOpts::call());
            let totals: Vec<u64> = BATCHES
                .iter()
                .map(|&n| {
                    let inv = sys.invoke_batch(n, bytes, &InvokeOpts::call());
                    assert_eq!(inv.total, inv.ledger.total(), "{name} n={n}");
                    assert_eq!(
                        inv.copied_bytes,
                        n * first.copied_bytes,
                        "{name} n={n}: payload movement never amortizes"
                    );
                    assert_eq!(
                        inv.ledger.get(Phase::Transfer),
                        n * first.ledger.get(Phase::Transfer),
                        "{name} n={n}: transfer is per-call"
                    );
                    inv.total
                })
                .collect();
            assert_eq!(totals[0], first.total, "{name}: batch of 1 == oneway");
            // Strict per-call decrease: total(m)/m < total(n)/n for m > n,
            // compared exactly via cross-multiplication.
            for w in [(1, 0), (2, 1)] {
                let (hi, lo) = (w.0, w.1);
                assert!(
                    totals[hi] * BATCHES[lo] < totals[lo] * BATCHES[hi],
                    "{name} at {bytes}B: per-call cost must strictly drop \
                     from batch {} to {}",
                    BATCHES[lo],
                    BATCHES[hi]
                );
            }
            // Floor: a batched call never dips below its transfer cost.
            for (&n, &total) in BATCHES.iter().zip(&totals) {
                assert!(
                    total >= n * first.ledger.get(Phase::Transfer),
                    "{name} at {bytes}B n={n}: below the transfer floor"
                );
            }
        }
    }
}

#[test]
fn xpc_batching_ratio_beats_every_trap_based_baseline() {
    // The figure behind the pipeline experiment: XPC amortizes its whole
    // entry path (trampoline + uncached x-entry fetch) across a burst,
    // trap-based kernels only amortize user-side setup — so XPC's
    // batch-64 vs batch-1 per-call ratio must beat every one of them.
    let ratio_at_64 = |sys: &mut Box<dyn IpcSystem>| {
        let one = sys.invoke_batch(1, 64, &InvokeOpts::call()).total as f64;
        let batch = sys.invoke_batch(64, 64, &InvokeOpts::call()).total as f64;
        one / (batch / 64.0)
    };
    let mut xpc_min = f64::INFINITY;
    let mut baseline_max: (f64, String) = (0.0, String::new());
    for mut sys in full_roster().into_iter().chain(full_roster_cross_core()) {
        let r = ratio_at_64(&mut sys);
        assert!(r > 1.0, "{}: batching must amortize something", sys.name());
        if sys.migrating_threads() {
            xpc_min = xpc_min.min(r);
        } else if r > baseline_max.0 {
            baseline_max = (r, sys.name());
        }
    }
    assert!(
        xpc_min > baseline_max.0,
        "XPC batch ratio {xpc_min:.2}x must beat the best baseline \
         ({} at {:.2}x)",
        baseline_max.1,
        baseline_max.0
    );
    // And the gap is material: the engine cache + trampoline skip buy
    // well over 2x, the §2 trap path caps below it.
    assert!(xpc_min > 2.5, "XPC batch-64 ratio: {xpc_min:.2}x");
    assert!(baseline_max.0 < 2.5, "{baseline_max:?}");
}

#[test]
fn numa_pricing_invariants_over_the_full_roster() {
    // The dual-socket acceptance invariant, over all 12 systems: a hop to
    // a core on the *remote* socket strictly exceeds the same hop to a
    // core on the local socket (trap-based kernels pay the
    // distance-scaled IPI + wakeup + cache-transfer surcharge; migrating
    // designs pay the relay-segment line-distance term and/or the remote
    // x-entry shard fetch) — while migrating-thread calls keep the
    // intra-socket crossing at zero Phase::CrossCore, exactly the §5.2
    // free crossing.
    use simos::{MultiWorld, Topology};
    for mk in kernels::full_roster_factories() {
        let name = mk().name();
        let migrating = mk().migrating_threads();
        for bytes in [0u64, 64, 4096] {
            let hop = |to: usize| {
                let mut mw = MultiWorld::builder()
                    .topology(Topology::dual_socket())
                    .build(mk);
                mw.exec_oneway(0, to, bytes, &InvokeOpts::call(), 0).1
            };
            let local = hop(1); // same socket
            let remote = hop(4); // distance 2
            assert!(
                remote.total > local.total,
                "{name} at {bytes}B: remote-socket hop ({}) must strictly \
                 exceed local-socket hop ({})",
                remote.total,
                local.total
            );
            assert_eq!(local.total, local.ledger.total(), "{name}");
            assert_eq!(remote.total, remote.ledger.total(), "{name}");
            if migrating {
                // Intra-socket xcall: no surcharge, not even a zero span.
                assert_eq!(local.ledger.get(Phase::CrossCore), 0, "{name}");
                assert!(
                    !local
                        .ledger
                        .spans()
                        .iter()
                        .any(|(p, _)| *p == Phase::CrossCore),
                    "{name}: intra-socket migrating hop must not record \
                     a CrossCore span"
                );
            } else {
                // Trap-based: distance 2 at numa_x10 = 5 doubles the
                // whole surcharge, and sharding never applies.
                let flat = XCoreCost::u500().hop_extra(bytes);
                assert_eq!(local.ledger.get(Phase::CrossCore), flat, "{name}");
                assert_eq!(remote.ledger.get(Phase::CrossCore), 2 * flat, "{name}");
                assert_eq!(remote.ledger.get(Phase::ShardMiss), 0, "{name}");
            }
        }
    }
}

#[test]
fn sharded_xentry_fetches_are_counted_and_priced() {
    // XPC on the dual socket: a remote-shard call leg pays
    // xentry_shard_fetch x distance and bumps the shard-miss counter; a
    // local-shard leg pays and counts nothing.
    use simos::{MultiWorld, Topology};
    let mk = || -> Box<dyn IpcSystem> { Box::new(XpcIpc::sel4_xpc()) };
    let mut mw = MultiWorld::builder()
        .topology(Topology::dual_socket())
        .build(mk);
    let fetch = CostModel::u500().xentry_shard_fetch;
    let (_, local) = mw.exec_oneway(0, 1, 0, &InvokeOpts::call(), 0);
    assert_eq!(local.ledger.get(Phase::ShardMiss), 0);
    let (_, remote) = mw.exec_oneway(0, 4, 0, &InvokeOpts::call(), 0);
    assert_eq!(remote.ledger.get(Phase::ShardMiss), 2 * fetch);
    assert_eq!(remote.total, local.total + 2 * fetch);
    let stats = mw.engine_cache_stats().expect("XPC models an engine cache");
    assert_eq!(stats.shard_misses, 1, "only the remote leg missed");
}

#[test]
fn roundtrip_is_the_sum_of_its_legs() {
    for mut sys in full_roster() {
        let name = sys.name();
        let call = sys.oneway(256, &InvokeOpts::call());
        let reply = sys.oneway(64, &InvokeOpts::reply_leg());
        let rt = sys.roundtrip(256, 64);
        assert_eq!(rt.total, call.total + reply.total, "{name}");
        assert_eq!(rt.ledger.total(), rt.total, "{name}");
        assert_eq!(
            rt.copied_bytes,
            call.copied_bytes + reply.copied_bytes,
            "{name}"
        );
    }
}
